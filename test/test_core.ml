(* Integration tests for hermes.core: the 2PC Agent Certifier end to end.

   Each test assembles a small HMDBS inside the discrete-event engine,
   runs transactions through the DTM, then verifies the recorded history
   with the independent theory checkers. *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Ltm = Hermes_ltm.Ltm
module Failure = Hermes_ltm.Failure
module Trace = Hermes_ltm.Trace
module Config = Hermes_core.Config
module Program = Hermes_core.Program
module Alive_table = Hermes_core.Alive_table
module Coordinator = Hermes_core.Coordinator
module Dtm = Hermes_core.Dtm
module Report = Hermes_history.Report
module History = Hermes_history.History
module Committed = Hermes_history.Committed
module Anomaly = Hermes_history.Anomaly
module Rigorous = Hermes_history.Rigorous
module Op = Hermes_history.Op

let a = Site.of_int 0
let b = Site.of_int 1

type world = { engine : Engine.t; dtm : Dtm.t; trace : Trace.t }

let make_world ?(n_sites = 2) ?(certifier = Config.full) ?(site_spec = fun _ -> Dtm.default_site_spec)
    ?(seed = 42) ?(crash_coordinators = false) ?obs () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed in
  let trace = Trace.create () in
  let dtm =
    Dtm.create ~engine ~rng ~trace ~net_config:Hermes_net.Network.default_config ~certifier
      ?obs ~crash_coordinators ~site_specs:(Array.init n_sites site_spec) ()
  in
  { engine; dtm; trace }

(* Standard initial data: table "X" keys 0..9 value 100 at every site. *)
let load_standard w =
  List.iter
    (fun site -> List.iter (fun k -> Dtm.load w.dtm site ~table:"X" ~key:k ~value:100) (List.init 10 Fun.id))
    (Dtm.site_ids w.dtm)

let select site keys = (site, Command.Select { table = "X"; keys })
let update site key delta = (site, Command.Update { table = "X"; key; delta })

let run_to_completion w = Engine.run w.engine

(* ------------------------------------------------------------------ *)
(* Happy path                                                          *)
(* ------------------------------------------------------------------ *)

let test_single_global_commit () =
  let w = make_world () in
  load_standard w;
  let outcome = ref None in
  ignore
    (Dtm.submit w.dtm
       (Program.make [ update a 0 10; update b 0 (-10); select a [ 0 ] ])
       ~on_done:(fun o -> outcome := Some o));
  run_to_completion w;
  (match !outcome with
  | Some Coordinator.Committed -> ()
  | Some (Coordinator.Aborted r) -> Alcotest.failf "aborted: %a" Coordinator.pp_reason r
  | None -> Alcotest.fail "never finished");
  (* Effects applied. *)
  let va = Hermes_store.Database.read (Dtm.database w.dtm a) ~table:"X" ~key:0 in
  let vb = Hermes_store.Database.read (Dtm.database w.dtm b) ~table:"X" ~key:0 in
  Alcotest.(check int) "a updated" 110 (Hermes_store.Row.value (Option.get va));
  Alcotest.(check int) "b updated" 90 (Hermes_store.Row.value (Option.get vb));
  (* History clean and complete. *)
  let h = Dtm.history w.dtm in
  let t1 = Txn.global 1 in
  Alcotest.(check bool) "complete" true (History.is_complete h t1);
  let rep = Report.analyze h in
  Alcotest.(check bool) "report ok" true (Report.ok rep);
  (* The trace's final values agree with the stores themselves. *)
  List.iter
    (fun (item, v) ->
      let site = Item.site item in
      match Hermes_store.Database.read (Dtm.database w.dtm site) ~table:(Item.table item) ~key:(Item.key item) with
      | Some row -> Alcotest.(check int) (Fmt.str "final %a" Item.pp item) (Hermes_store.Row.value row) v
      | None -> Alcotest.failf "item %a missing from store" Item.pp item)
    (Hermes_history.Values.final_values h)

let test_read_only_commit () =
  let w = make_world () in
  load_standard w;
  let outcome = ref None in
  ignore
    (Dtm.submit w.dtm (Program.make [ select a [ 0; 1 ]; select b [ 2 ] ]) ~on_done:(fun o -> outcome := Some o));
  run_to_completion w;
  Alcotest.(check bool) "committed" true (!outcome = Some Coordinator.Committed)

let test_many_sequential_commits () =
  let w = make_world () in
  load_standard w;
  let committed = ref 0 in
  let rec submit_next n =
    if n > 0 then
      ignore
        (Dtm.submit w.dtm
           (Program.make [ update a (n mod 10) 1; update b (n mod 10) (-1) ])
           ~on_done:(fun o ->
             if o = Coordinator.Committed then incr committed;
             submit_next (n - 1)))
  in
  submit_next 20;
  run_to_completion w;
  Alcotest.(check int) "all committed" 20 !committed;
  let rep = Report.analyze (Dtm.history w.dtm) in
  Alcotest.(check bool) "rigorous" true (Report.rigorous rep);
  Alcotest.(check bool) "no distortions" true (rep.Report.global_distortions = []);
  Alcotest.(check bool) "CG acyclic" true (rep.Report.cg_cycle = None)

let test_concurrent_nonconflicting () =
  let w = make_world () in
  load_standard w;
  let committed = ref 0 in
  (* Five concurrent global transactions on disjoint keys. *)
  for i = 0 to 4 do
    ignore
      (Dtm.submit w.dtm
         (Program.make [ update a i 1; update b i 1 ])
         ~on_done:(fun o -> if o = Coordinator.Committed then incr committed))
  done;
  run_to_completion w;
  Alcotest.(check int) "all five committed" 5 !committed;
  Alcotest.(check bool) "clean" true (Report.ok (Report.analyze (Dtm.history w.dtm)))

let test_concurrent_conflicting_failure_free () =
  (* The §6 restrictiveness claim: failure-free, the certifier aborts
     nothing, even under conflicts (lock waits serialize them). *)
  let w = make_world () in
  load_standard w;
  let committed = ref 0 and aborted = ref 0 in
  for _ = 1 to 8 do
    ignore
      (Dtm.submit w.dtm
         (Program.make [ update a 0 1; update b 0 1 ])
         ~on_done:(fun o -> if o = Coordinator.Committed then incr committed else incr aborted))
  done;
  run_to_completion w;
  Alcotest.(check int) "all committed" 8 !committed;
  Alcotest.(check int) "none aborted" 0 !aborted;
  let va = Hermes_store.Database.read (Dtm.database w.dtm a) ~table:"X" ~key:0 in
  Alcotest.(check int) "serialized increments" 108 (Hermes_store.Row.value (Option.get va));
  Alcotest.(check bool) "clean" true (Report.ok (Report.analyze (Dtm.history w.dtm)))

(* ------------------------------------------------------------------ *)
(* Failures: unilateral aborts in the prepared state                   *)
(* ------------------------------------------------------------------ *)

let failing_site_spec ~p _ = { Dtm.default_site_spec with Dtm.failure = Failure.prepared_rate p }

let test_resubmission_recovers () =
  (* Aggressive failure injection on prepared subtransactions: the agent
     must resubmit and still commit everything, with no distortions. *)
  let w = make_world ~site_spec:(failing_site_spec ~p:0.5) () in
  load_standard w;
  let committed = ref 0 and aborted = ref 0 in
  let rec submit_next n =
    if n > 0 then
      ignore
        (Dtm.submit w.dtm
           (Program.make [ update a (n mod 5) 1; update b (n mod 5) (-1) ])
           ~on_done:(fun o ->
             (if o = Coordinator.Committed then incr committed else incr aborted);
             submit_next (n - 1)))
  in
  submit_next 15;
  run_to_completion w;
  Alcotest.(check int) "all runs finished" 15 (!committed + !aborted);
  Alcotest.(check bool) "most committed" true (!committed >= 10);
  let h = Dtm.history w.dtm in
  let rep = Report.analyze h in
  Alcotest.(check bool) "rigorous" true (Report.rigorous rep);
  Alcotest.(check bool) "no global distortion" true (rep.Report.global_distortions = []);
  Alcotest.(check bool) "CG acyclic" true (rep.Report.cg_cycle = None);
  (* At least one resubmission actually happened, else the test is vacuous. *)
  let totals = Dtm.totals w.dtm in
  Alcotest.(check bool) "resubmissions occurred" true (totals.Dtm.resubmissions > 0)

let test_balance_invariant_under_failures () =
  (* Transfers between sites preserve total money even with failures. *)
  let w = make_world ~site_spec:(failing_site_spec ~p:0.4) ~seed:7 () in
  load_standard w;
  let total () =
    Hermes_store.Database.total (Dtm.database w.dtm a) ~table:"X"
    + Hermes_store.Database.total (Dtm.database w.dtm b) ~table:"X"
  in
  let before = total () in
  let finished = ref 0 in
  let rec submit_next n =
    if n > 0 then
      ignore
        (Dtm.submit w.dtm
           (Program.make [ update a (n mod 10) (-5); update b ((n + 3) mod 10) 5 ])
           ~on_done:(fun _ ->
             incr finished;
             submit_next (n - 1)))
  in
  submit_next 12;
  run_to_completion w;
  Alcotest.(check int) "all finished" 12 !finished;
  Alcotest.(check int) "money conserved" before (total ())

let test_site_crash_recovery () =
  (* Collective aborts (site crashes) during a workload: the certifier
     recovers every prepared subtransaction by resubmission and the
     history stays clean. *)
  let crash_spec i =
    if i = 0 then
      { Dtm.default_site_spec with Dtm.failure = Failure.crashes ~mean_interval:20_000 ~horizon:300_000 }
    else Dtm.default_site_spec
  in
  let w = make_world ~site_spec:crash_spec ~seed:21 () in
  load_standard w;
  let committed = ref 0 and finished = ref 0 in
  let rec submit_next n =
    if n > 0 then
      ignore
        (Dtm.submit w.dtm
           (Program.make [ update a (n mod 5) 1; update b (n mod 5) (-1) ])
           ~on_done:(fun o ->
             incr finished;
             if o = Coordinator.Committed then incr committed;
             submit_next (n - 1)))
  in
  submit_next 20;
  run_to_completion w;
  Alcotest.(check int) "all finished" 20 !finished;
  Alcotest.(check bool) "most committed" true (!committed >= 15);
  Alcotest.(check bool) "crashes happened" true (Failure.crash_count (Dtm.injector w.dtm a) >= 1);
  let rep = Report.analyze (Dtm.history w.dtm) in
  Alcotest.(check bool) "rigorous" true (Report.rigorous rep);
  Alcotest.(check bool) "no distortions" true (rep.Report.global_distortions = []);
  Alcotest.(check bool) "CG acyclic" true (rep.Report.cg_cycle = None)

(* ------------------------------------------------------------------ *)
(* Agent crash & recovery (Agent-log durability, 2PC idempotence)      *)
(* ------------------------------------------------------------------ *)

(* Crash site [s] as soon as its agent holds a prepared subtransaction
   (polling monitor, like the scenario saboteur). *)
let crash_when_prepared w s =
  let agent = Dtm.agent w.dtm s in
  let fired = ref false in
  let rec poll () =
    if (not !fired) && Time.to_int (Engine.now w.engine) < 2_000_000 then
      if Hermes_core.Agent.n_prepared agent > 0 then begin
        fired := true;
        Dtm.crash_site w.dtm s
      end
      else Engine.schedule_unit w.engine ~delay:100 poll
  in
  Engine.schedule_unit w.engine ~delay:100 poll

let test_crash_while_prepared_recovers () =
  (* The in-doubt subtransaction must be rebuilt from the Agent log and
     still commit when the coordinator's COMMIT arrives. *)
  let w = make_world () in
  load_standard w;
  let outcome = ref None in
  ignore
    (Dtm.submit w.dtm (Program.make [ update a 0 7; update b 0 (-7) ]) ~on_done:(fun o -> outcome := Some o));
  crash_when_prepared w a;
  run_to_completion w;
  (match !outcome with
  | Some Coordinator.Committed -> ()
  | Some (Coordinator.Aborted r) -> Alcotest.failf "aborted: %a" Coordinator.pp_reason r
  | None -> Alcotest.fail "stuck");
  (* Effects applied exactly once despite the crash. *)
  let va = Hermes_store.Database.read (Dtm.database w.dtm a) ~table:"X" ~key:0 in
  Alcotest.(check int) "applied once" 107 (Hermes_store.Row.value (Option.get va));
  let ags = Hermes_core.Agent.stats (Dtm.agent w.dtm a) in
  Alcotest.(check int) "one crash" 1 ags.Hermes_core.Agent.crashes;
  Alcotest.(check bool) "recovered from log" true (ags.Hermes_core.Agent.recovered >= 1);
  Alcotest.(check bool) "clean" true (Report.ok (Report.analyze (Dtm.history w.dtm)))

let test_crash_while_active_aborts () =
  (* Crashing before the prepare: the work is simply lost; the coordinator
     learns through the failed command (or its timeout) and aborts. *)
  let w = make_world () in
  load_standard w;
  let outcome = ref None in
  ignore
    (Dtm.submit w.dtm
       (Program.make [ update a 0 7; update a 1 7; update b 0 (-14) ])
       ~on_done:(fun o -> outcome := Some o));
  (* Crash site a mid-execution (before any prepare can exist). *)
  Engine.schedule_unit w.engine ~delay:1_800 (fun () -> Dtm.crash_site w.dtm a);
  run_to_completion w;
  (match !outcome with
  | Some (Coordinator.Aborted _) -> ()
  | Some Coordinator.Committed -> Alcotest.fail "must abort"
  | None -> Alcotest.fail "stuck");
  (* Nothing leaked: values intact. *)
  let va = Hermes_store.Database.read (Dtm.database w.dtm a) ~table:"X" ~key:0 in
  Alcotest.(check int) "rolled back" 100 (Hermes_store.Row.value (Option.get va))

let test_crash_storm_workload () =
  (* Repeated crashes of both sites during a concurrent workload: every
     transaction finishes (decision retransmission + idempotent re-acks),
     money is conserved, and the history verifies. *)
  let w = make_world ~seed:31 () in
  load_standard w;
  let committed = ref 0 and finished = ref 0 in
  let rec submit_next n =
    if n > 0 then
      ignore
        (Dtm.submit w.dtm
           (Program.make [ update a (n mod 5) 3; update b (n mod 5) (-3) ])
           ~on_done:(fun o ->
             incr finished;
             if o = Coordinator.Committed then incr committed;
             submit_next (n - 1)))
  in
  submit_next 25;
  (* Crashes every ~15ms on alternating sites while the workload runs. *)
  let rec storm i =
    if i < 12 then
      Engine.schedule_unit w.engine ~delay:15_000 (fun () ->
          Dtm.crash_site w.dtm (if i mod 2 = 0 then a else b);
          storm (i + 1))
  in
  storm 0;
  run_to_completion w;
  Alcotest.(check int) "all finished" 25 !finished;
  Alcotest.(check bool) "most committed" true (!committed >= 15);
  let total =
    Hermes_store.Database.total (Dtm.database w.dtm a) ~table:"X"
    + Hermes_store.Database.total (Dtm.database w.dtm b) ~table:"X"
  in
  Alcotest.(check int) "money conserved" 2000 total;
  let rep = Report.analyze (Dtm.history w.dtm) in
  Alcotest.(check bool) "rigorous" true (Report.rigorous rep);
  Alcotest.(check bool) "no distortions" true (rep.Report.global_distortions = []);
  Alcotest.(check bool) "CG acyclic" true (rep.Report.cg_cycle = None)

(* Regression: the coordinator used to count PREPARE-phase votes with a
   plain integer, so two READYs from the same site (a duplicated message
   on a flaky network) looked like quorum and the COMMIT went out before
   every participant had voted. Votes are now a site set. *)
let test_duplicate_votes_no_early_commit () =
  let module Message = Hermes_net.Message in
  let module Network = Hermes_net.Network in
  let engine = Engine.create () in
  let net =
    Network.create ~engine ~rng:(Rng.create ~seed:5)
      ~config:{ Hermes_net.Network.default_config with jitter = 0 }
      ()
  in
  let trace = Trace.create () in
  let b_voted = ref false and early_commit = ref false in
  (* Scripted participants: site a votes READY twice in a row; site b
     only votes 50k ticks later. A COMMIT before b's vote is the bug. *)
  let agent_handler ~double site (m : Message.t) =
    let reply p = Network.send net ~src:(Message.Agent site) ~dst:m.Message.src ~gid:m.Message.gid p in
    match m.Message.payload with
    | Message.Begin _ -> ()
    | Message.Exec { step; _ } -> reply (Message.Exec_ok { step; result = Command.Count 1 })
    | Message.Prepare _ ->
        if double then begin
          reply Message.Ready;
          reply Message.Ready
        end
        else
          Engine.schedule_unit engine ~delay:50_000 (fun () ->
              b_voted := true;
              reply Message.Ready)
    | Message.Commit ->
        if not !b_voted then early_commit := true;
        reply Message.Commit_ack
    | Message.Rollback -> reply Message.Rollback_ack
    | _ -> ()
  in
  Network.register net (Message.Agent a) (agent_handler ~double:true a);
  Network.register net (Message.Agent b) (agent_handler ~double:false b);
  let outcome = ref None in
  ignore
    (Coordinator.start ~gid:1 ~site:a ~engine ~net ~trace ~config:Config.full
       ~sn_gen:(fun () -> Sn.make ~ts:(Engine.now engine) ~site:a ~seq:1)
       ~program:(Program.make [ update a 0 1; update b 0 1 ])
       ~on_done:(fun o -> outcome := Some o)
       ());
  Engine.run engine;
  Alcotest.(check bool) "committed" true (!outcome = Some Coordinator.Committed);
  Alcotest.(check bool) "no COMMIT before the second vote" false !early_commit

(* Regression: a COMMIT arriving for a prepared subtransaction the agent
   no longer knows (its volatile state died in a crash) used to raise.
   The decision must instead be noted durably in the Agent log so that
   recovery redoes the local commit and acks. *)
let test_commit_while_crashed_noted_durably () =
  let w = make_world () in
  load_standard w;
  let outcome = ref None in
  ignore
    (Dtm.submit w.dtm (Program.make [ update a 0 7; update b 0 (-7) ]) ~on_done:(fun o -> outcome := Some o));
  let agent = Dtm.agent w.dtm a in
  let noted = ref false in
  let fired = ref false in
  (* Crash the agent in place the moment it is prepared: its handler
     stays registered, so the coordinator's COMMIT reaches a crashed
     agent that has no volatile state for the gid. *)
  let rec poll () =
    if not !fired then
      if Hermes_core.Agent.n_prepared agent > 0 then begin
        fired := true;
        Hermes_core.Agent.crash agent;
        (* Well after the COMMIT has arrived (base delay 500, jitter 200)
           but before recovery: the decision must already be durable,
           the local commit must not have happened. *)
        Engine.schedule_unit w.engine ~delay:5_000 (fun () ->
            (match Hermes_core.Agent_log.find (Hermes_core.Agent.agent_log agent) ~gid:1 with
            | Some e ->
                noted :=
                  e.Hermes_core.Agent_log.committed && not e.Hermes_core.Agent_log.locally_committed
            | None -> ());
            Hermes_core.Agent.recover agent)
      end
      else Engine.schedule_unit w.engine ~delay:100 poll
  in
  Engine.schedule_unit w.engine ~delay:100 poll;
  run_to_completion w;
  (match !outcome with
  | Some Coordinator.Committed -> ()
  | Some (Coordinator.Aborted r) -> Alcotest.failf "aborted: %a" Coordinator.pp_reason r
  | None -> Alcotest.fail "stuck");
  Alcotest.(check bool) "decision noted durably before recovery" true !noted;
  let va = Hermes_store.Database.read (Dtm.database w.dtm a) ~table:"X" ~key:0 in
  Alcotest.(check int) "applied exactly once" 107 (Hermes_store.Row.value (Option.get va));
  Alcotest.(check bool) "clean" true (Report.ok (Report.analyze (Dtm.history w.dtm)))

(* Every protocol message duplicated: BEGIN, EXEC, votes, decisions and
   acks must all be handled idempotently end to end. *)
let test_fully_duplicated_network () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:42 in
  let trace = Trace.create () in
  let dtm =
    Dtm.create ~engine ~rng ~trace
      ~net_config:
        {
          Hermes_net.Network.default_config with
          faults = { Hermes_net.Network.no_faults with Hermes_net.Network.dup = 1.0 };
        }
      ~certifier:Config.full
      ~site_specs:(Array.init 2 (fun _ -> Dtm.default_site_spec))
      ()
  in
  let w = { engine; dtm; trace } in
  load_standard w;
  let committed = ref 0 and finished = ref 0 in
  for i = 0 to 9 do
    ignore
      (Dtm.submit w.dtm
         (Program.make [ update a (i mod 5) 3; update b (i mod 5) (-3) ])
         ~on_done:(fun o ->
           incr finished;
           if o = Coordinator.Committed then incr committed))
  done;
  run_to_completion w;
  Alcotest.(check int) "all finished" 10 !finished;
  Alcotest.(check int) "all committed" 10 !committed;
  let total =
    Hermes_store.Database.total (Dtm.database w.dtm a) ~table:"X"
    + Hermes_store.Database.total (Dtm.database w.dtm b) ~table:"X"
  in
  Alcotest.(check int) "effects applied exactly once" 2000 total;
  Alcotest.(check bool) "clean" true (Report.ok (Report.analyze (Dtm.history w.dtm)))

let test_agent_log_in_doubt () =
  let log = Hermes_core.Agent_log.create () in
  let coord = Hermes_net.Message.Coordinator 1 in
  let sn = Sn.make ~ts:(Time.of_int 5) ~site:a ~seq:1 in
  let e1 = Hermes_core.Agent_log.entry log ~gid:1 ~coordinator:coord in
  let e2 = Hermes_core.Agent_log.entry log ~gid:2 ~coordinator:coord in
  let e3 = Hermes_core.Agent_log.entry log ~gid:3 ~coordinator:coord in
  let e4 = Hermes_core.Agent_log.entry log ~gid:4 ~coordinator:coord in
  ignore (Hermes_core.Agent_log.entry log ~gid:5 ~coordinator:coord);
  (* e1: prepared, in doubt. e2: decision forced but not locally committed:
     still needs recovery (redo). e3: fully committed. e4: rolled back.
     e5: never prepared. *)
  Hermes_core.Agent_log.force_prepare log e1 ~sn;
  Hermes_core.Agent_log.force_prepare log e2 ~sn;
  Hermes_core.Agent_log.force_commit log e2;
  Hermes_core.Agent_log.force_prepare log e3 ~sn;
  Hermes_core.Agent_log.force_commit log e3;
  e3.Hermes_core.Agent_log.locally_committed <- true;
  Hermes_core.Agent_log.force_prepare log e4 ~sn;
  Hermes_core.Agent_log.note_rollback e4;
  let in_doubt = List.map (fun e -> e.Hermes_core.Agent_log.gid) (Hermes_core.Agent_log.in_doubt log) in
  Alcotest.(check (list int)) "in doubt" [ 1; 2 ] in_doubt;
  Alcotest.(check bool) "max committed sn" true
    (Hermes_core.Agent_log.max_committed_sn log = Some sn);
  Alcotest.(check bool) "force writes counted" true (Hermes_core.Agent_log.force_writes log >= 6)

let test_agent_log_force_commit_idempotent () =
  (* A decision replayed after recovery must not pay a second synchronous
     force or disturb the biggest-committed-SN watermark. *)
  let log = Hermes_core.Agent_log.create () in
  let sn = Sn.make ~ts:(Time.of_int 9) ~site:a ~seq:1 in
  let e = Hermes_core.Agent_log.entry log ~gid:1 ~coordinator:(Hermes_net.Message.Coordinator 1) in
  Hermes_core.Agent_log.force_prepare log e ~sn;
  Hermes_core.Agent_log.force_commit log e;
  let forces = Hermes_core.Agent_log.force_writes log in
  Hermes_core.Agent_log.force_commit log e;
  Hermes_core.Agent_log.force_commit log e;
  Alcotest.(check int) "replayed forces are free" forces (Hermes_core.Agent_log.force_writes log);
  Alcotest.(check bool) "still committed" true e.Hermes_core.Agent_log.committed;
  Alcotest.(check bool) "watermark unchanged" true
    (Hermes_core.Agent_log.max_committed_sn log = Some sn)

let test_agent_log_commands_order () =
  let log = Hermes_core.Agent_log.create () in
  let e = Hermes_core.Agent_log.entry log ~gid:1 ~coordinator:(Hermes_net.Message.Coordinator 1) in
  let c1 = Command.Select { table = "X"; keys = [ 1 ] } in
  let c2 = Command.Update { table = "X"; key = 2; delta = 1 } in
  Hermes_core.Agent_log.append_command e c1;
  Hermes_core.Agent_log.append_command e c2;
  Alcotest.(check bool) "replay order preserved" true (Hermes_core.Agent_log.commands e = [ c1; c2 ])

(* ------------------------------------------------------------------ *)
(* Coordinator crash & recovery (Coordinator-log durability,           *)
(* in-doubt termination)                                               *)
(* ------------------------------------------------------------------ *)

(* Crash site [s] as soon as site [watch]'s agent holds a prepared
   subtransaction. *)
let crash_when_site_prepared ?(reboot_delay = 0) w ~watch s =
  let agent = Dtm.agent w.dtm watch in
  let fired = ref false in
  let rec poll () =
    if (not !fired) && Time.to_int (Engine.now w.engine) < 2_000_000 then
      if Hermes_core.Agent.n_prepared agent > 0 then begin
        fired := true;
        Dtm.crash_site ~reboot_delay w.dtm s
      end
      else Engine.schedule_unit w.engine ~delay:100 poll
  in
  Engine.schedule_unit w.engine ~delay:100 poll

(* Regression for [Dtm.crash_site] on a coordinating site. Without
   [crash_coordinators] the hosted coordinator survives its own site's
   crash (the pre-durability idealization: 2PC state was effectively
   immortal) and the round completes as if nothing happened to it. *)
let test_crash_coordinating_site_legacy_immortal () =
  let w = make_world () in
  load_standard w;
  let outcome = ref None in
  ignore
    (Dtm.submit w.dtm (Program.make [ update a 0 5; update b 0 (-5) ]) ~on_done:(fun o -> outcome := Some o));
  (* Site a hosts the coordinator; crash it once b is prepared — with the
     flag off, the coordinator keeps driving the round from beyond the
     grave. *)
  crash_when_site_prepared w ~watch:b a;
  run_to_completion w;
  Alcotest.(check bool) "round still completes" true (!outcome <> None);
  (* The coordinator log was written regardless (begin + prepared), so
     enabling the flag later has a log to recover from. *)
  Alcotest.(check bool) "coordinator log populated" true
    (Hermes_core.Coordinator_log.n_entries (Dtm.coordinator_log w.dtm a) >= 1);
  Alcotest.(check bool) "clean" true (Report.ok (Report.analyze (Dtm.history w.dtm)))

(* With [crash_coordinators], the same crash kills the coordinator
   before it decides: recovery finds no decision record and presumes
   abort, so the prepared participant is released instead of blocking
   forever. *)
let test_crash_coordinating_site_presumes_abort () =
  let w = make_world ~crash_coordinators:true () in
  load_standard w;
  let outcome = ref None in
  ignore
    (Dtm.submit w.dtm (Program.make [ update a 0 5; update b 0 (-5) ]) ~on_done:(fun o -> outcome := Some o));
  (* b's READY is still in flight when the poll fires (votes take >= 300
     ticks, the poll lags <= 100), so the coordinator cannot have decided
     yet: this is the in-doubt window. *)
  crash_when_site_prepared w ~watch:b a;
  run_to_completion w;
  (match !outcome with
  | Some (Coordinator.Aborted Coordinator.Presumed_abort) -> ()
  | Some o -> Alcotest.failf "expected presumed abort, got %a" Coordinator.pp_outcome o
  | None -> Alcotest.fail "participant blocked forever");
  (* Rolled back everywhere: values intact. *)
  let va = Hermes_store.Database.read (Dtm.database w.dtm a) ~table:"X" ~key:0 in
  let vb = Hermes_store.Database.read (Dtm.database w.dtm b) ~table:"X" ~key:0 in
  Alcotest.(check int) "a rolled back" 100 (Hermes_store.Row.value (Option.get va));
  Alcotest.(check int) "b rolled back" 100 (Hermes_store.Row.value (Option.get vb));
  (* The log's decision record is the presumed abort. *)
  (match Hermes_core.Coordinator_log.find (Dtm.coordinator_log w.dtm a) ~gid:1 with
  | Some e -> Alcotest.(check bool) "decision = abort" true (e.Hermes_core.Coordinator_log.decision = Some false)
  | None -> Alcotest.fail "no coordinator-log entry");
  Alcotest.(check bool) "clean" true (Report.ok (Report.analyze (Dtm.history w.dtm)))

(* The acceptance scenario: the coordinating site crashes right after
   deciding COMMIT, so the decision reaches only a strict subset of the
   participants (the coordinator's own site and, during the down window,
   nobody else in doubt gets an answer). The participants terminate via
   Coordinator-log recovery plus DECISION-REQ inquiries. *)
let test_coordinator_crash_after_partial_commit () =
  let s2 = Site.of_int 2 in
  let obs = Hermes_obs.Obs.create () in
  let w = make_world ~n_sites:3 ~crash_coordinators:true ~obs () in
  load_standard w;
  let outcome = ref None in
  ignore
    (Dtm.submit w.dtm
       (Program.make [ update a 0 4; update b 0 3; (s2, Command.Update { table = "X"; key = 0; delta = -7 }) ])
       ~on_done:(fun o -> outcome := Some o));
  (* First: participant s2 crashes while prepared and stays down 20k
     ticks — the COMMIT sent to it is a counted drop, leaving it in
     doubt after recovery. *)
  crash_when_site_prepared ~reboot_delay:20_000 w ~watch:s2 s2;
  (* Second: the moment the decision record hits the coordinator log,
     the coordinating site crashes for 100k ticks — longer than the
     60k-tick inquiry interval, so s2's recovery provably sends at least
     one DECISION-REQ into the outage before the reboot answers. *)
  let clog = Dtm.coordinator_log w.dtm a in
  let fired = ref false in
  let rec poll () =
    if (not !fired) && Time.to_int (Engine.now w.engine) < 2_000_000 then
      match Hermes_core.Coordinator_log.find clog ~gid:1 with
      | Some e when e.Hermes_core.Coordinator_log.decision = Some true ->
          fired := true;
          Dtm.crash_site ~reboot_delay:100_000 w.dtm a
      | Some _ | None -> Engine.schedule_unit w.engine ~delay:100 poll
  in
  Engine.schedule_unit w.engine ~delay:100 poll;
  run_to_completion w;
  (match !outcome with
  | Some Coordinator.Committed -> ()
  | Some (Coordinator.Aborted r) -> Alcotest.failf "aborted: %a" Coordinator.pp_reason r
  | None -> Alcotest.fail "blocked forever");
  Alcotest.(check bool) "the decision was made before the crash" true !fired;
  (* Every participant reached committed, exactly once. *)
  List.iter
    (fun (site, expect) ->
      let row = Hermes_store.Database.read (Dtm.database w.dtm site) ~table:"X" ~key:0 in
      Alcotest.(check int)
        (Fmt.str "site %a committed" Site.pp site)
        expect
        (Hermes_store.Row.value (Option.get row)))
    [ (a, 104); (b, 103); (s2, 93) ];
  (* The termination protocol actually ran: s2 recovered in doubt and
     asked for the outcome. *)
  let reg = Hermes_obs.Obs.metrics obs in
  Alcotest.(check bool) "at least one DECISION-REQ sent" true
    (Hermes_obs.Registry.sum_counter reg "agent.inquiries" >= 1);
  (* The log kept the decision; nothing is left undecided. *)
  Alcotest.(check bool) "no undecided coordinator-log entries" true
    (Hermes_core.Coordinator_log.undecided clog = []);
  Alcotest.(check bool) "clean" true (Report.ok (Report.analyze (Dtm.history w.dtm)))

(* ------------------------------------------------------------------ *)
(* Certification behaviour                                             *)
(* ------------------------------------------------------------------ *)

(* Conflicting traffic in the H1 shape: readers of X0 that write X1,
   racing writers of X0 — so when a prepared reader is unilaterally
   aborted, a waiting writer grabs X0, commits, and the reader's
   resubmission re-reads X0 from it. No S->X upgrades (each key is locked
   in its final mode directly), so no upgrade deadlocks. *)
let conflicting_batches w ~batches ~width =
  let remaining = ref batches in
  let rec launch_batch () =
    if !remaining > 0 then begin
      decr remaining;
      let pending = ref width in
      for i = 0 to width - 1 do
        let program =
          if i mod 2 = 0 then Program.make [ select a [ 0 ]; update a 1 1; update b 0 1 ]
          else Program.make [ update a 0 1; update b 0 1 ]
        in
        ignore
          (Dtm.submit w.dtm program
             ~on_done:(fun _ ->
               decr pending;
               if !pending = 0 then launch_batch ()))
      done
    end
  in
  launch_batch ()

let test_naive_agent_distorts () =
  (* With certification off, failure injection plus conflicting concurrent
     traffic must eventually produce a global view distortion — the H1
     scenario arising naturally. (Deterministic H1/H2 replays live in the
     harness scenarios; here we only require the anomaly arises on some
     seed.) *)
  let found = ref false in
  let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  List.iter
    (fun seed ->
      if not !found then begin
        let w = make_world ~certifier:Config.naive ~site_spec:(failing_site_spec ~p:0.6) ~seed () in
        load_standard w;
        conflicting_batches w ~batches:6 ~width:4;
        (try run_to_completion w with Engine.Stuck _ -> ());
        let c = Committed.extended (Dtm.history w.dtm) in
        if Anomaly.global_view_distortions c <> [] then found := true
      end)
    seeds;
  Alcotest.(check bool) "naive agent produced a distortion" true !found

let test_full_certifier_never_distorts () =
  (* Same aggressive setting, full certifier: zero distortions, acyclic
     CG, across several seeds. *)
  List.iter
    (fun seed ->
      let w = make_world ~site_spec:(failing_site_spec ~p:0.6) ~seed () in
      load_standard w;
      conflicting_batches w ~batches:6 ~width:4;
      run_to_completion w;
      let c = Committed.extended (Dtm.history w.dtm) in
      Alcotest.(check (list string))
        (Fmt.str "no distortions (seed %d)" seed)
        []
        (List.map (Fmt.str "%a" Anomaly.pp_global) (Anomaly.global_view_distortions c));
      Alcotest.(check bool) (Fmt.str "CG acyclic (seed %d)" seed) true (Anomaly.commit_order_cycle c = None);
      Alcotest.(check bool) (Fmt.str "rigorous (seed %d)" seed) true
        (Rigorous.all_sites_rigorous (Dtm.history w.dtm)))
    [ 1; 2; 3; 4; 5 ]

(* ------------------------------------------------------------------ *)
(* Alive table unit tests                                              *)
(* ------------------------------------------------------------------ *)

let test_alive_table () =
  let t = Alive_table.create () in
  let sn n = Sn.make ~ts:(Time.of_int n) ~site:a ~seq:0 in
  let iv lo hi = Interval.make ~lo:(Time.of_int lo) ~hi:(Time.of_int hi) in
  Alive_table.insert t ~gid:1 ~sn:(sn 1) ~interval:(iv 0 10);
  Alive_table.insert t ~gid:2 ~sn:(sn 2) ~interval:(iv 5 15);
  Alcotest.(check int) "size" 2 (Alive_table.size t);
  Alcotest.(check bool) "intersecting candidate" true (Alive_table.all_intersect t (iv 8 9));
  Alcotest.(check bool) "disjoint candidate" false (Alive_table.all_intersect t (iv 20 30));
  Alcotest.(check bool) "gid1 is min sn" true (Alive_table.min_sn_holds t ~gid:1 ~sn:(sn 1));
  Alcotest.(check bool) "gid2 blocked by gid1" false (Alive_table.min_sn_holds t ~gid:2 ~sn:(sn 2));
  Alive_table.remove t ~gid:1;
  Alcotest.(check bool) "gid2 now free" true (Alive_table.min_sn_holds t ~gid:2 ~sn:(sn 2));
  Alive_table.extend_interval t ~gid:2 ~hi:(Time.of_int 40);
  Alcotest.(check bool) "extended" true (Alive_table.all_intersect t (iv 20 30))

let test_alive_table_duplicate () =
  let t = Alive_table.create () in
  let sn = Sn.make ~ts:Time.zero ~site:a ~seq:0 in
  Alive_table.insert t ~gid:1 ~sn ~interval:(Interval.point Time.zero);
  Alcotest.check_raises "duplicate" (Invalid_argument "Alive_table.insert: duplicate entry") (fun () ->
      Alive_table.insert t ~gid:1 ~sn ~interval:(Interval.point Time.zero))

let test_alive_table_multi_interval () =
  (* The §4.2 optimization: a candidate matching only an OLD interval of
     an entry still certifies when several intervals are kept, but not
     under the store-only-the-last baseline. *)
  let iv lo hi = Interval.make ~lo:(Time.of_int lo) ~hi:(Time.of_int hi) in
  let sn = Sn.make ~ts:Time.zero ~site:a ~seq:0 in
  let t = Alive_table.create () in
  Alive_table.insert t ~gid:1 ~sn ~interval:(iv 0 10);
  Alive_table.push_interval t ~gid:1 ~max_intervals:3 (iv 100 110);
  Alcotest.(check bool) "old interval still counts" true (Alive_table.all_intersect t (iv 5 8));
  Alcotest.(check bool) "new interval counts" true (Alive_table.all_intersect t (iv 105 120));
  Alcotest.(check bool) "gap refuses" false (Alive_table.all_intersect t (iv 40 60));
  (* Single-interval baseline forgets the past. *)
  let t1 = Alive_table.create () in
  Alive_table.insert t1 ~gid:1 ~sn ~interval:(iv 0 10);
  Alive_table.update_interval t1 ~gid:1 (iv 100 110);
  Alcotest.(check bool) "baseline forgets" false (Alive_table.all_intersect t1 (iv 5 8))

let test_alive_table_interval_cap () =
  let iv lo hi = Interval.make ~lo:(Time.of_int lo) ~hi:(Time.of_int hi) in
  let sn = Sn.make ~ts:Time.zero ~site:a ~seq:0 in
  let t = Alive_table.create () in
  Alive_table.insert t ~gid:1 ~sn ~interval:(iv 0 10);
  Alive_table.push_interval t ~gid:1 ~max_intervals:2 (iv 20 30);
  Alive_table.push_interval t ~gid:1 ~max_intervals:2 (iv 40 50);
  (* Oldest interval evicted. *)
  Alcotest.(check bool) "oldest gone" false (Alive_table.all_intersect t (iv 0 10));
  Alcotest.(check bool) "middle kept" true (Alive_table.all_intersect t (iv 25 26));
  match Alive_table.find t ~gid:1 with
  | Some e -> Alcotest.(check int) "two intervals" 2 (List.length e.Alive_table.intervals)
  | None -> Alcotest.fail "entry missing"

(* Satellite of the aggregate rework: on equal serial numbers both
   blocker variants must agree on the smaller gid, independent of
   hash-fold order. *)
let test_min_sn_blocker_tie_break () =
  let t = Alive_table.create () in
  let sn = Sn.make ~ts:(Time.of_int 5) ~site:a ~seq:0 in
  let iv = Interval.make ~lo:Time.zero ~hi:(Time.of_int 10) in
  Alive_table.insert t ~gid:7 ~sn ~interval:iv;
  Alive_table.insert t ~gid:3 ~sn ~interval:iv;
  let check_gid name got =
    match got with
    | Some e -> Alcotest.(check int) name 3 e.Alive_table.gid
    | None -> Alcotest.fail (name ^ ": no blocker")
  in
  let candidate_sn = Sn.make ~ts:(Time.of_int 9) ~site:a ~seq:0 in
  check_gid "map blocker ties on gid" (Alive_table.min_sn_blocker t ~gid:99 ~sn:candidate_sn);
  check_gid "fold blocker ties on gid" (Alive_table.min_sn_blocker_fold t ~gid:99 ~sn:candidate_sn)

(* The incremental aggregates must answer exactly like the fold
   references after any operation sequence, including interleaved
   inserts, removals, resubmission pushes, baseline updates and alive
   extensions. *)
let prop_fast_paths_agree_with_folds =
  QCheck.Test.make ~name:"aggregate fast paths = fold references" ~count:300 QCheck.small_nat
    (fun seed ->
      let rng = Rng.create ~seed:(seed + 1) in
      let t = Alive_table.create () in
      let sn n = Sn.make ~ts:(Time.of_int n) ~site:a ~seq:0 in
      let iv () =
        let lo = Rng.int rng ~bound:50 in
        Interval.make ~lo:(Time.of_int lo) ~hi:(Time.of_int (lo + Rng.int rng ~bound:30))
      in
      let same_entry x y =
        match (x, y) with
        | None, None -> true
        | Some (e1 : Alive_table.entry), Some e2 -> e1.Alive_table.gid = e2.Alive_table.gid
        | _ -> false
      in
      let ok = ref true in
      for _ = 1 to 40 do
        let gid = Rng.int rng ~bound:8 in
        (match Rng.int rng ~bound:6 with
        | 0 ->
            if not (Alive_table.mem t ~gid) then
              Alive_table.insert t ~gid ~sn:(sn (Rng.int rng ~bound:10)) ~interval:(iv ())
        | 1 -> Alive_table.remove t ~gid
        | 2 -> Alive_table.push_interval t ~gid ~max_intervals:(1 + Rng.int rng ~bound:3) (iv ())
        | 3 -> Alive_table.update_interval t ~gid (iv ())
        | _ -> Alive_table.extend_interval t ~gid ~hi:(Time.of_int (Rng.int rng ~bound:100)));
        let cand = iv () in
        let gid' = Rng.int rng ~bound:8 and sn' = sn (Rng.int rng ~bound:10) in
        ok :=
          !ok
          && Alive_table.all_intersect t cand = Alive_table.all_intersect_fold t cand
          && Alive_table.min_sn_holds t ~gid:gid' ~sn:sn'
             = Alive_table.min_sn_holds_fold t ~gid:gid' ~sn:sn'
          && same_entry
               (Alive_table.min_sn_blocker t ~gid:gid' ~sn:sn')
               (Alive_table.min_sn_blocker_fold t ~gid:gid' ~sn:sn')
      done;
      !ok)

(* The E9 equivalence theorem at table level: for any candidate whose
   interval ends no earlier than every stored interval (certification
   candidates end at the checking moment), keeping several intervals
   decides exactly like keeping only the newest. *)
let prop_multi_interval_equivalent =
  QCheck.Test.make ~name:"multi-interval certification = newest-interval certification" ~count:300
    QCheck.(pair (list_of_size (Gen.int_range 1 5) (pair small_nat (list_of_size (Gen.int_range 0 3) small_nat))) small_nat)
    (fun (entries, cand_lo) ->
      let sn n = Sn.make ~ts:(Time.of_int n) ~site:a ~seq:n in
      let multi = Alive_table.create () and single = Alive_table.create () in
      let horizon = ref 0 in
      List.iteri
        (fun gid (first_lo, resubs) ->
          let iv lo len =
            horizon := max !horizon (lo + len);
            Interval.make ~lo:(Time.of_int lo) ~hi:(Time.of_int (lo + len))
          in
          let first = iv first_lo 10 in
          Alive_table.insert multi ~gid ~sn:(sn gid) ~interval:first;
          Alive_table.insert single ~gid ~sn:(sn gid) ~interval:first;
          (* Each resubmission starts strictly after everything so far. *)
          List.iter
            (fun len ->
              let next = iv (!horizon + 1) len in
              Alive_table.push_interval multi ~gid ~max_intervals:10 next;
              Alive_table.update_interval single ~gid next)
            resubs)
        entries;
      let candidate =
        Interval.make ~lo:(Time.of_int (min cand_lo !horizon)) ~hi:(Time.of_int (!horizon + 5))
      in
      Alive_table.all_intersect multi candidate = Alive_table.all_intersect single candidate)

let test_multi_interval_end_to_end () =
  (* Same aggressive failure scenario under both variants: the
     multi-interval certifier must be correct too. *)
  let w = make_world ~certifier:Config.multi_interval ~site_spec:(failing_site_spec ~p:0.6) ~seed:3 () in
  load_standard w;
  conflicting_batches w ~batches:6 ~width:4;
  run_to_completion w;
  let c = Committed.extended (Dtm.history w.dtm) in
  Alcotest.(check (list string)) "no distortions" []
    (List.map (Fmt.str "%a" Anomaly.pp_global) (Anomaly.global_view_distortions c));
  Alcotest.(check bool) "CG acyclic" true (Anomaly.commit_order_cycle c = None)

(* ------------------------------------------------------------------ *)
(* Program unit tests                                                  *)
(* ------------------------------------------------------------------ *)

let test_program () =
  let p = Program.make [ update a 0 1; update b 1 2; select a [ 2 ] ] in
  Alcotest.(check int) "length" 3 (Program.length p);
  Alcotest.(check int) "two sites" 2 (List.length (Program.sites p));
  Alcotest.(check int) "commands at a" 2 (List.length (Program.commands_at p a));
  Alcotest.(check bool) "not read only" false (Program.is_read_only p);
  Alcotest.check_raises "empty" (Invalid_argument "Program.make: empty program") (fun () ->
      ignore (Program.make []))

let () =
  Alcotest.run "core"
    [
      ( "happy-path",
        [
          Alcotest.test_case "single global commit" `Quick test_single_global_commit;
          Alcotest.test_case "read-only commit" `Quick test_read_only_commit;
          Alcotest.test_case "20 sequential commits" `Quick test_many_sequential_commits;
          Alcotest.test_case "concurrent non-conflicting" `Quick test_concurrent_nonconflicting;
          Alcotest.test_case "conflicting, failure-free: 0 aborts" `Quick
            test_concurrent_conflicting_failure_free;
        ] );
      ( "failures",
        [
          Alcotest.test_case "resubmission recovers" `Quick test_resubmission_recovers;
          Alcotest.test_case "balance invariant" `Quick test_balance_invariant_under_failures;
          Alcotest.test_case "site crash recovery" `Quick test_site_crash_recovery;
        ] );
      ( "crash-recovery",
        [
          Alcotest.test_case "crash while prepared" `Quick test_crash_while_prepared_recovers;
          Alcotest.test_case "crash while active" `Quick test_crash_while_active_aborts;
          Alcotest.test_case "crash storm" `Quick test_crash_storm_workload;
          Alcotest.test_case "duplicate votes: no early commit" `Quick test_duplicate_votes_no_early_commit;
          Alcotest.test_case "COMMIT while crashed: decision noted durably" `Quick
            test_commit_while_crashed_noted_durably;
          Alcotest.test_case "fully duplicated network" `Quick test_fully_duplicated_network;
          Alcotest.test_case "agent log: in-doubt set" `Quick test_agent_log_in_doubt;
          Alcotest.test_case "agent log: force-commit idempotent" `Quick
            test_agent_log_force_commit_idempotent;
          Alcotest.test_case "agent log: command order" `Quick test_agent_log_commands_order;
        ] );
      ( "coordinator-crash",
        [
          Alcotest.test_case "legacy: coordinator survives its site" `Quick
            test_crash_coordinating_site_legacy_immortal;
          Alcotest.test_case "crash before decision: presumed abort" `Quick
            test_crash_coordinating_site_presumes_abort;
          Alcotest.test_case "crash after partial COMMIT: termination" `Quick
            test_coordinator_crash_after_partial_commit;
        ] );
      ( "certification",
        [
          Alcotest.test_case "naive agent distorts" `Quick test_naive_agent_distorts;
          Alcotest.test_case "full certifier never distorts" `Quick test_full_certifier_never_distorts;
        ] );
      ( "alive-table",
        [
          Alcotest.test_case "operations" `Quick test_alive_table;
          Alcotest.test_case "duplicate insert" `Quick test_alive_table_duplicate;
          Alcotest.test_case "multi-interval optimization" `Quick test_alive_table_multi_interval;
          Alcotest.test_case "interval cap" `Quick test_alive_table_interval_cap;
          Alcotest.test_case "multi-interval end-to-end" `Quick test_multi_interval_end_to_end;
          Alcotest.test_case "min-SN blocker gid tie-break" `Quick test_min_sn_blocker_tie_break;
          QCheck_alcotest.to_alcotest prop_fast_paths_agree_with_folds;
          QCheck_alcotest.to_alcotest prop_multi_interval_equivalent;
        ] );
      ( "program", [ Alcotest.test_case "basics" `Quick test_program ] );
    ]

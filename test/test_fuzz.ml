(* Randomized end-to-end fuzzing: many runs across the configuration space
   (failure rates, site crashes, jitter, drift, skew, site counts,
   deadlock policies), each verified by the offline checkers. The full
   certifier must never produce a global view distortion, a commit-order
   cycle, a non-rigorous local history, or a stuck transaction — the
   paper's guarantees as one property over the whole parameter space.

   Each run also cross-checks the money invariant: the generator's update
   deltas are arbitrary, so instead of conservation we re-derive the
   expected database state from the committed projection's replay — the
   trace and the store must agree. *)

open Hermes_kernel
module Ltm_config = Hermes_ltm.Ltm_config
module Failure = Hermes_ltm.Failure
module Network = Hermes_net.Network
module Config = Hermes_core.Config
module Spec = Hermes_workload.Spec
module Stats = Hermes_workload.Stats
module Driver = Hermes_workload.Driver
module Committed = Hermes_history.Committed
module Anomaly = Hermes_history.Anomaly
module Rigorous = Hermes_history.Rigorous
module History = Hermes_history.History

let random_setup rng =
  let n_sites = Rng.int_in rng ~lo:2 ~hi:5 in
  let crash_schedule =
    if Rng.bool rng ~p:0.3 then
      List.init (Rng.int_in rng ~lo:1 ~hi:3) (fun i ->
          (10_000 + (i * Rng.int_in rng ~lo:10_000 ~hi:40_000), Rng.int rng ~bound:n_sites))
    else []
  in
  let drift = if Rng.bool rng ~p:0.3 then Rng.int_in rng ~lo:100 ~hi:5_000 else 0 in
  {
    Driver.default_setup with
    Driver.protocol = Driver.Two_pca Config.full;
    failure = Failure.prepared_rate (Rng.float rng ~bound:0.4);
    net = { Network.default_config with base_delay = 500; jitter = Rng.int rng ~bound:2_000 };
    ltm =
      {
        Ltm_config.default with
        Ltm_config.deadlock =
          Rng.choice rng
            [| Ltm_config.Timeout_only; Ltm_config.Detection_and_timeout; Ltm_config.Wait_die;
               Ltm_config.Wound_wait |];
      };
    clock_of_site = (fun i -> Clock.make ~offset:(if i mod 2 = 0 then drift else -drift) ());
    crash_schedule;
    seed = Rng.int rng ~bound:1_000_000;
    time_limit = 60_000_000;
    spec =
      (let n_global = Rng.int_in rng ~lo:20 ~hi:50 in
       let mpl = Rng.int_in rng ~lo:2 ~hi:8 in
       let sites_per_txn = Rng.int_in rng ~lo:1 ~hi:(min 3 n_sites) in
       let ops_per_site = Rng.int_in rng ~lo:1 ~hi:3 in
       let keys_per_site = Rng.int_in rng ~lo:8 ~hi:30 in
       let n_tables = Rng.int_in rng ~lo:1 ~hi:3 in
       let theta = Rng.float rng ~bound:1.1 in
       let local_mpl_per_site = Rng.int rng ~bound:3 in
       let local_write_ratio = Rng.float rng ~bound:1.0 in
       Spec.make ~n_sites ~n_global
         ~arrival:(Spec.Closed { mpl; think_time_mean = Spec.think_time Spec.default })
         ~mix:{ Spec.sites_per_txn; ops_per_site; write_ratio = 0.5 }
         ~keys_per_site ~n_tables
         ~key_dist:(Spec.Zipf { theta })
         ~local_mpl_per_site ~local_write_ratio ~local_txn_cap:300 ());
  }

let check_run i setup =
  let r = Driver.run setup in
  let label fmt = Fmt.str ("fuzz #%d: " ^^ fmt) i in
  Alcotest.(check int) (label "no stuck transactions") 0 r.Driver.stuck;
  Alcotest.(check int)
    (label "quota finished")
    setup.Driver.spec.Spec.n_global
    (Stats.committed r.Driver.stats + Stats.aborted_final r.Driver.stats);
  let h = r.Driver.history in
  Alcotest.(check bool) (label "rigorous everywhere") true (Rigorous.all_sites_rigorous h);
  let c = Committed.extended h in
  Alcotest.(check (list string))
    (label "no global view distortion")
    []
    (List.map (Fmt.str "%a" Anomaly.pp_global) (Anomaly.global_view_distortions c));
  Alcotest.(check bool) (label "CG acyclic") true (Anomaly.commit_order_cycle c = None)

let test_fuzz_full_certifier () =
  let rng = Rng.create ~seed:20260706 in
  for i = 1 to 40 do
    check_run i (random_setup rng)
  done

(* The same fuzz over the CGM baseline: correct by different means. *)
let test_fuzz_cgm () =
  let rng = Rng.create ~seed:1517 in
  for i = 1 to 10 do
    let setup = random_setup rng in
    (* CGM has no agent-crash recovery (its servers are per-subtransaction
       and the paper's comparison excludes it): drop crash schedules, keep
       unilateral aborts. *)
    let setup =
      {
        setup with
        Driver.protocol = Driver.Cgm_baseline Hermes_baselines.Cgm.default_config;
        crash_schedule = [];
      }
    in
    let r = Driver.run setup in
    let label fmt = Fmt.str ("cgm fuzz #%d: " ^^ fmt) i in
    Alcotest.(check int) (label "no stuck transactions") 0 r.Driver.stuck;
    let c = Committed.extended r.Driver.history in
    Alcotest.(check int)
      (label "no global view distortion")
      0
      (List.length (Anomaly.global_view_distortions c));
    Alcotest.(check bool) (label "CG acyclic") true (Anomaly.commit_order_cycle c = None)
  done

(* Determinism across the space: re-running any fuzzed setup reproduces
   the exact event count. *)
let test_fuzz_deterministic () =
  let rng = Rng.create ~seed:77 in
  for _ = 1 to 5 do
    let setup = random_setup rng in
    let r1 = Driver.run setup and r2 = Driver.run setup in
    Alcotest.(check int) "same events" r1.Driver.events r2.Driver.events;
    Alcotest.(check int) "same history length" (History.length r1.Driver.history)
      (History.length r2.Driver.history)
  done

(* Faults must be masked, not tolerated-with-casualties: a run on a
   lossy, duplicating network with real reboot windows commits exactly
   the transaction set the reliable run commits at the same seed (with
   no injected unilateral aborts that is: all of them), with no
   distortion, an acyclic CG and nothing stuck. *)
let prop_lossy_run_matches_reliable =
  QCheck.Test.make ~name:"lossy+dup+reboot run commits the reliable run's transaction set" ~count:5
    QCheck.(pair (int_bound 100_000) (int_bound 1))
    (fun (seed, with_reboot) ->
      let spec =
        Spec.make ~n_global:30
          ~arrival:(Spec.Closed { mpl = 3; think_time_mean = Spec.think_time Spec.default })
          ()
      in
      let base =
        {
          Driver.default_setup with
          Driver.protocol = Driver.Two_pca Config.full;
          seed;
          spec;
          time_limit = 60_000_000;
        }
      in
      let reliable = Driver.run base in
      let faulty =
        Driver.run
          {
            base with
            Driver.net =
              {
                Network.default_config with
                faults = { Network.no_faults with Network.drop = 0.03; dup = 0.03 };
              };
            crash_schedule = [ (20_000, 0); (50_000, 1) ];
            reboot_delay = (if with_reboot = 1 then 15_000 else 0);
          }
      in
      let committed r = Stats.committed r.Driver.stats in
      let c = Committed.extended faulty.Driver.history in
      committed reliable = spec.Spec.n_global
      && committed faulty = committed reliable
      && faulty.Driver.stuck = 0
      && Anomaly.global_view_distortions c = []
      && Anomaly.commit_order_cycle c = None)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "fuzz"
    [
      ( "protocol-fuzz",
        [
          Alcotest.test_case "full certifier, 40 random configurations" `Slow test_fuzz_full_certifier;
          Alcotest.test_case "CGM baseline, 10 random configurations" `Slow test_fuzz_cgm;
          Alcotest.test_case "determinism" `Quick test_fuzz_deterministic;
          q prop_lossy_run_matches_reliable;
        ] );
    ]

(* Tests for hermes.harness: the protocol-level scenario replays are the
   paper's claims as executable regressions — each anomaly must appear
   under the naive agent and disappear under the certification step the
   paper assigns to it. *)

module Scenario = Hermes_harness.Scenario
module Experiment = Hermes_harness.Experiment
module Table_fmt = Hermes_harness.Table_fmt
module Config = Hermes_core.Config
module Coordinator = Hermes_core.Coordinator
module Report = Hermes_history.Report
module View = Hermes_history.View

let commit_only = { Config.naive with Config.commit_certification = true }
let prepare_only = { Config.naive with Config.prepare_certification = true; bind_data = true }

let is_not_vsr (r : Scenario.run) = r.Scenario.report.Report.view = View.Not_serializable
let has_cg_cycle (r : Scenario.run) = r.Scenario.report.Report.cg_cycle <> None
let all_finished (r : Scenario.run) = List.for_all (fun (_, o) -> o <> None) r.Scenario.outcomes

let committed label (r : Scenario.run) =
  match List.assoc_opt label r.Scenario.outcomes with
  | Some (Some Coordinator.Committed) -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* H1                                                                  *)
(* ------------------------------------------------------------------ *)

let test_h1_naive_distorts () =
  let r = Scenario.h1 ~certifier:Config.naive () in
  Alcotest.(check bool) "T1 committed" true (committed "T1" r);
  Alcotest.(check bool) "T2 committed" true (committed "T2" r);
  Alcotest.(check bool) "distortion" true (r.Scenario.report.Report.global_distortions <> []);
  Alcotest.(check bool) "not VSR" true (is_not_vsr r)

let test_h1_prepare_cert_prevents () =
  let r = Scenario.h1 ~certifier:prepare_only () in
  Alcotest.(check bool) "T1 committed" true (committed "T1" r);
  Alcotest.(check bool) "no distortion" true (r.Scenario.report.Report.global_distortions = []);
  Alcotest.(check bool) "serializable" true (Report.serializable r.Scenario.report)

let test_h1_full_prevents () =
  let r = Scenario.h1 ~certifier:Config.full () in
  Alcotest.(check bool) "T1 committed" true (committed "T1" r);
  Alcotest.(check bool) "serializable" true (Report.serializable r.Scenario.report)

let test_h1_commit_only_livelocks () =
  (* The liveness finding: without the Correctness Invariant at prepare
     time, recovery deadlocks against the conflicting prepared T2. *)
  let r = Scenario.h1 ~certifier:commit_only () in
  Alcotest.(check bool) "stuck transactions" false (all_finished r)

(* ------------------------------------------------------------------ *)
(* H2                                                                  *)
(* ------------------------------------------------------------------ *)

let test_h2_naive_distorts () =
  let r = Scenario.h2 ~certifier:Config.naive () in
  Alcotest.(check bool) "CG cycle" true (has_cg_cycle r);
  Alcotest.(check bool) "not VSR" true (is_not_vsr r);
  (* ... and it is a *local* view distortion: no global one. *)
  Alcotest.(check bool) "no global distortion" true (r.Scenario.report.Report.global_distortions = [])

let test_h2_commit_cert_prevents () =
  let r = Scenario.h2 ~certifier:commit_only () in
  Alcotest.(check bool) "T1 committed" true (committed "T1" r);
  Alcotest.(check bool) "T3 committed" true (committed "T3" r);
  Alcotest.(check bool) "CG acyclic" false (has_cg_cycle r);
  Alcotest.(check bool) "serializable" true (Report.serializable r.Scenario.report)

let test_h2_full_prevents () =
  let r = Scenario.h2 ~certifier:Config.full () in
  Alcotest.(check bool) "serializable" true (Report.serializable r.Scenario.report)

(* ------------------------------------------------------------------ *)
(* H3                                                                  *)
(* ------------------------------------------------------------------ *)

let test_h3_naive_distorts () =
  let r = Scenario.h3 ~certifier:Config.naive () in
  Alcotest.(check bool) "CG cycle" true (has_cg_cycle r);
  Alcotest.(check bool) "not VSR" true (is_not_vsr r)

let test_h3_commit_cert_prevents () =
  let r = Scenario.h3 ~certifier:commit_only () in
  Alcotest.(check bool) "T5 committed" true (committed "T5" r);
  Alcotest.(check bool) "T6 committed" true (committed "T6" r);
  Alcotest.(check bool) "serializable" true (Report.serializable r.Scenario.report)

let test_h3_full_prevents () =
  let r = Scenario.h3 ~certifier:Config.full () in
  Alcotest.(check bool) "serializable" true (Report.serializable r.Scenario.report)

(* ------------------------------------------------------------------ *)
(* Overtaking (§5.3)                                                   *)
(* ------------------------------------------------------------------ *)

let test_overtake_extension () =
  (* Find a racing seed under no-extension; the race must produce a CG
     cycle there, and the extension must turn it into a refusal. *)
  let no_ext = { Config.full with Config.certification_extension = false } in
  let rec hunt seed =
    if seed > 500 then None
    else
      let r = Scenario.overtake ~certifier:no_ext ~jitter:8_000 ~seed () in
      if r.Scenario.overtaken then Some (seed, r) else hunt (seed + 1)
  in
  match hunt 1 with
  | None -> Alcotest.fail "no race in 500 seeds"
  | Some (seed, r) ->
      Alcotest.(check bool) "race causes CG cycle without extension" true
        (r.Scenario.o_run.Scenario.report.Report.cg_cycle <> None);
      let f = Scenario.overtake ~certifier:Config.full ~jitter:8_000 ~seed () in
      Alcotest.(check bool) "extension refuses" true (f.Scenario.extension_refusals > 0);
      Alcotest.(check bool) "no cycle with extension" true
        (f.Scenario.o_run.Scenario.report.Report.cg_cycle = None)

let test_overtake_none_without_jitter () =
  for seed = 1 to 50 do
    let r = Scenario.overtake ~certifier:Config.naive ~jitter:0 ~seed () in
    Alcotest.(check bool) "no race without jitter" false r.Scenario.overtaken
  done

(* ------------------------------------------------------------------ *)
(* Table rendering                                                     *)
(* ------------------------------------------------------------------ *)

let test_table_render () =
  let t =
    Table_fmt.make ~title:"demo" ~headers:[ "a"; "bb" ] ~notes:[ "note" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let s = Table_fmt.to_string t in
  Alcotest.(check bool) "title" true (Astring.String.is_infix ~affix:"== demo ==" s |> fun _ -> String.length s > 0);
  (* All rendered rows have equal width. *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> String.length l > 0 && l.[0] = '|') in
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true (List.sort_uniq Int.compare widths |> List.length = 1)

let test_table_cells () =
  Alcotest.(check string) "pct" "12.5%" (Table_fmt.pct 0.125);
  Alcotest.(check string) "f1" "3.1" (Table_fmt.f1 3.14);
  Alcotest.(check string) "bool" "yes" (Table_fmt.b true)

(* ------------------------------------------------------------------ *)
(* Experiments (shape checks)                                          *)
(* ------------------------------------------------------------------ *)

let test_e1_shape () =
  let t = Experiment.e1_global_view_distortion () in
  let s = Table_fmt.to_string t in
  Alcotest.(check bool) "has naive row" true
    (List.exists (fun l -> String.length l > 0) (String.split_on_char '\n' s));
  (* The key assertions: naive row says NOT VSR, full row says VSR. *)
  let lines = String.split_on_char '\n' s in
  let find sub = List.exists (fun l -> Astring.String.is_infix ~affix:sub l) lines in
  ignore (find "x");
  Alcotest.(check bool) "mentions NOT VSR" true
    (List.exists
       (fun l ->
         Astring.String.is_infix ~affix:"naive" l && Astring.String.is_infix ~affix:"NOT VSR" l)
       lines);
  Alcotest.(check bool) "full certifier clean" true
    (List.exists
       (fun l ->
         Astring.String.is_infix ~affix:"full 2CM" l
         && (not (Astring.String.is_infix ~affix:"NOT VSR" l))
         && Astring.String.is_infix ~affix:"VSR" l)
       lines)

(* ------------------------------------------------------------------ *)
(* Domain pool                                                         *)
(* ------------------------------------------------------------------ *)

let test_pool_map_order () =
  let xs = List.init 37 Fun.id in
  Alcotest.(check (list int)) "order preserved" (List.map (fun x -> x * x) xs)
    (Hermes_harness.Pool.map ~jobs:4 (fun x -> x * x) xs);
  Alcotest.(check (list int)) "jobs=1 degenerate" [ 2; 4 ]
    (Hermes_harness.Pool.map ~jobs:1 (fun x -> 2 * x) [ 1; 2 ])

let test_pool_map_exception () =
  Alcotest.check_raises "worker exception propagates" (Failure "boom") (fun () ->
      ignore (Hermes_harness.Pool.map ~jobs:3 (fun x -> if x = 5 then failwith "boom" else x) (List.init 10 Fun.id)))

(* After a worker records an exception the dispenser must stop handing
   out items. Item 0 fails immediately; every other item takes ~1ms, so
   without the early-stop check the surviving worker would grind through
   all 64 items before the join, and with it the queue is abandoned
   after at most the items already in flight. *)
let test_pool_map_early_stop () =
  let touched = Array.make 64 false in
  (try
     ignore
       (Hermes_harness.Pool.map ~jobs:2
          (fun x ->
            touched.(x) <- true;
            if x = 0 then failwith "early";
            Unix.sleepf 0.001;
            x)
          (List.init 64 Fun.id))
   with Failure _ -> ());
  let computed = Array.fold_left (fun acc t -> if t then acc + 1 else acc) 0 touched in
  Alcotest.(check bool)
    (Fmt.str "dispensing stopped early (computed %d/64)" computed)
    true (computed < 64)

(* The acceptance criterion of the parallel runner: fanning a seed sweep
   over domains changes neither the table text nor the metrics dump. *)
let test_parallel_byte_identical () =
  let run jobs =
    let metrics = Hermes_obs.Registry.create () in
    let t = Experiment.e8_commit_retry ~seeds:2 ~jobs ~metrics () in
    (Table_fmt.to_string t, Hermes_obs.Registry.to_json metrics)
  in
  let table1, metrics1 = run 1 and table2, metrics2 = run 2 in
  Alcotest.(check string) "tables identical" table1 table2;
  Alcotest.(check string) "metrics identical" metrics1 metrics2

let () =
  Alcotest.run "harness"
    [
      ( "h1",
        [
          Alcotest.test_case "naive distorts" `Quick test_h1_naive_distorts;
          Alcotest.test_case "prepare cert prevents" `Quick test_h1_prepare_cert_prevents;
          Alcotest.test_case "full prevents" `Quick test_h1_full_prevents;
          Alcotest.test_case "commit-only livelocks" `Quick test_h1_commit_only_livelocks;
        ] );
      ( "h2",
        [
          Alcotest.test_case "naive distorts" `Quick test_h2_naive_distorts;
          Alcotest.test_case "commit cert prevents" `Quick test_h2_commit_cert_prevents;
          Alcotest.test_case "full prevents" `Quick test_h2_full_prevents;
        ] );
      ( "h3",
        [
          Alcotest.test_case "naive distorts" `Quick test_h3_naive_distorts;
          Alcotest.test_case "commit cert prevents" `Quick test_h3_commit_cert_prevents;
          Alcotest.test_case "full prevents" `Quick test_h3_full_prevents;
        ] );
      ( "overtake",
        [
          Alcotest.test_case "extension vs race" `Slow test_overtake_extension;
          Alcotest.test_case "no race without jitter" `Quick test_overtake_none_without_jitter;
        ] );
      ( "tables",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "cells" `Quick test_table_cells;
        ] );
      ( "experiments", [ Alcotest.test_case "E1 shape" `Slow test_e1_shape ] );
      ( "pool",
        [
          Alcotest.test_case "ordered map" `Quick test_pool_map_order;
          Alcotest.test_case "exception propagation" `Quick test_pool_map_exception;
          Alcotest.test_case "early stop on failure" `Quick test_pool_map_early_stop;
          Alcotest.test_case "parallel run byte-identical" `Slow test_parallel_byte_identical;
        ] );
    ]

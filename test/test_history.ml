(* Tests for hermes.history: the paper's own histories H1 (global view
   distortion), H2 (local view distortion through a direct conflict), a
   reconstruction of H3 (local view distortion through indirect conflicts
   only — the Fig. 2 transactions T5/T6/L7/L8), and the §5.3
   COMMIT-overtakes-PREPARE race, plus unit and property tests for the
   checkers themselves. *)

open Hermes_kernel
open Hermes_history
module Quasi = Hermes_history.Quasi

let a = Site.of_int 0
let b = Site.of_int 1
let g n = Txn.global n
let inc txn site k = Txn.Incarnation.make ~txn ~site ~inc:k
let item site table = Item.make ~site ~table ~key:0
let r i it = Op.read ~inc:i ~item:it ~from:None ()
let w i it = Op.write ~inc:i ~item:it ()
let lc i = Op.Local_commit i
let la i = Op.Local_abort i
let p txn site = Op.Prepare { txn; site; sn = None }
let gc txn = Op.Global_commit txn

(* Items at sites a and b, named as in the paper. *)
let xa = item a "X"
let ya = item a "Y"
let qa = item a "Q"
let ua = item a "U"
let zb = item b "Z"

(* ------------------------------------------------------------------ *)
(* H1 (paper §3): T1's subtransaction at a is unilaterally aborted after
   the global commit, then resubmitted; meanwhile T2 updates X^a and
   deletes Y^a, so the resubmitted T^a_11 reads X^a from T2 and has a
   different decomposition. *)
(* ------------------------------------------------------------------ *)

let t1 = g 1
let t2 = g 2
let i10a = inc t1 a 0
let i11a = inc t1 a 1
let i10b = inc t1 b 0
let i20a = inc t2 a 0
let i20b = inc t2 b 0

let h1 =
  History.of_ops
    [
      r i10a xa; r i10a ya; w i10a ya; r i10b zb; w i10b zb;
      p t1 a; p t1 b; gc t1;
      la i10a; lc i10b;
      w i20a ya; r i20a xa; w i20a xa; r i20b zb; w i20b zb;
      p t2 a; p t2 b; gc t2;
      lc i20a; lc i20b;
      (* Resubmission: Y^a was deleted by T2's update... in the paper T2
         deleted Y^a; here the changed decomposition is a lone read. *)
      r i11a xa; lc i11a;
    ]

let test_h1_committed_projection () =
  let c = Committed.extended h1 in
  Alcotest.(check int) "both transactions kept" 2 (List.length (History.txns c));
  Alcotest.(check bool) "aborted incarnation retained" true
    (History.exists (fun op -> Op.equal op (la i10a)) c);
  let classical = Committed.classical h1 in
  Alcotest.(check bool) "classical drops the aborted incarnation" false
    (History.exists (fun op -> Op.equal op (r i10a xa)) classical)

let test_h1_complete () =
  Alcotest.(check bool) "T1 committed" true (History.is_globally_committed h1 t1);
  Alcotest.(check bool) "T1 complete" true (History.is_complete h1 t1);
  Alcotest.(check (list int)) "T1 incarnations at a" [ 0; 1 ] (History.incarnations_at h1 t1 ~site:a);
  Alcotest.(check (list int)) "T1 incarnations at b" [ 0 ] (History.incarnations_at h1 t1 ~site:b)

let test_h1_locally_rigorous () =
  (* The paper stresses H1's site projections are locally fine — the
     distortion is invisible to the LTMs. *)
  Alcotest.(check bool) "all sites rigorous" true (Rigorous.all_sites_rigorous h1)

let test_h1_global_view_distortion () =
  let ds = Anomaly.global_view_distortions (Committed.extended h1) in
  Alcotest.(check bool) "detected" true (ds <> []);
  let d = List.hd ds in
  Alcotest.(check bool) "on T1" true (Txn.equal d.Anomaly.txn t1);
  Alcotest.(check bool) "at site a" true (Site.equal d.Anomaly.site a);
  Alcotest.(check bool) "different decomposition" true (d.Anomaly.reason = `Different_decomposition)

let test_h1_not_view_serializable () =
  match View.view_serializable (Committed.extended h1) with
  | View.Not_serializable -> ()
  | other -> Alcotest.failf "expected Not_serializable, got %a" View.pp_decision other

let test_h1_classical_is_serializable () =
  (* The paper: H1(^a) "would be locally serializable in the traditional
     sense", where the classical committed projection keeps only the R/W
     operations following A^a_10 — the anomaly is invisible to the local
     scheduler. *)
  match View.view_serializable (Projection.site (Committed.classical h1) a) with
  | View.Serializable _ -> ()
  | other -> Alcotest.failf "expected Serializable, got %a" View.pp_decision other

let test_h1_sg_cyclic () =
  Alcotest.(check bool) "SG(C(H1)) has a cycle" true
    (Serialization_graph.find_cycle (Committed.extended h1) <> None)

(* ------------------------------------------------------------------ *)
(* H2 (paper §5.1): local transaction L4 at site a reads Q^a from T3 and
   Y^a from T_0, while T3 read Z^b from T1 — local commits of T1 and T3
   are in opposite orders at sites a and b. *)
(* ------------------------------------------------------------------ *)

let t3 = g 3
let l4 = Txn.local ~site:a ~n:4
let i30a = inc t3 a 0
let i30b = inc t3 b 0
let i4 = inc l4 a 0

let h2 =
  History.of_ops
    [
      r i10a xa; r i10a ya; w i10a ya; r i10b zb; w i10b zb;
      p t1 a; p t1 b; gc t1;
      la i10a; lc i10b;
      r i30b zb; r i30a qa; w i30a qa;
      p t3 a; p t3 b; gc t3;
      lc i30a; lc i30b;
      r i4 qa; r i4 ya; w i4 ua; lc i4;
      r i11a xa; r i11a ya; w i11a ya; lc i11a;
    ]

let test_h2_cg_cyclic () =
  match Anomaly.commit_order_cycle (Committed.extended h2) with
  | Some cycle ->
      Alcotest.(check bool) "cycle involves T1 and T3" true
        (List.exists (Txn.equal t1) cycle && List.exists (Txn.equal t3) cycle)
  | None -> Alcotest.fail "expected CG cycle"

let test_h2_not_view_serializable () =
  match View.view_serializable (Committed.extended h2) with
  | View.Not_serializable -> ()
  | other -> Alcotest.failf "expected Not_serializable, got %a" View.pp_decision other

let test_h2_no_global_distortion () =
  (* H2 is a pure *local* view distortion: T1's resubmission got the same
     view and decomposition. *)
  Alcotest.(check bool) "no global distortion" true
    (Anomaly.global_view_distortions (Committed.extended h2) = [])

let test_h2_l4_views () =
  (* Verify the paper's reads-from claims: L4 reads Q^a from T3 and Y^a
     from T_0. *)
  let outcome = Replay.run (Committed.extended h2) in
  let reads = Replay.logical_reads outcome in
  let find it =
    List.find_map
      (fun (rd : Replay.logical_read) ->
        if Txn.Incarnation.equal rd.l_reader i4 && Item.equal rd.l_item it then Some rd.l_from else None)
      reads
  in
  Alcotest.(check bool) "Qa from T3" true (find qa = Some (Some t3));
  Alcotest.(check bool) "Ya from T0" true (find ya = Some None)

let test_h2_rigorous () = Alcotest.(check bool) "rigorous" true (Rigorous.all_sites_rigorous h2)

(* ------------------------------------------------------------------ *)
(* H3 (paper §5.1, reconstructed): T5 and T6 have *no* direct conflicts
   (disjoint items), but local transactions L7 (site a) and L8 (site b)
   conflict with both; T5's subtransaction at a aborts unilaterally after
   the global commit and is resubmitted late, so local commits end up in
   opposite orders and L7/L8 get non-serializable views. *)
(* ------------------------------------------------------------------ *)

let t5 = g 5
let t6 = g 6
let l7 = Txn.local ~site:a ~n:7
let l8 = Txn.local ~site:b ~n:8
let i50a = inc t5 a 0
let i51a = inc t5 a 1
let i50b = inc t5 b 0
let i60a = inc t6 a 0
let i60b = inc t6 b 0
let i7 = inc l7 a 0
let i8 = inc l8 b 0
let ub = item b "U"
let vb = item b "V"

let h3 =
  History.of_ops
    [
      w i50a xa; w i50b ub;
      p t5 a; p t5 b; gc t5;
      lc i50b; la i50a;
      r i8 ub; r i8 vb; lc i8;
      w i60a ya; w i60b vb;
      p t6 a; p t6 b; gc t6;
      lc i60a; lc i60b;
      r i7 ya; r i7 xa; lc i7;
      w i51a xa; lc i51a;
    ]

let test_h3_no_direct_conflict () =
  (* T5 and T6 touch disjoint items — the defining feature of H3. *)
  let items_of txn =
    History.ops_of_txn h3 txn |> List.filter_map Op.item |> List.sort_uniq Item.compare
  in
  let i5 = items_of t5 and i6 = items_of t6 in
  Alcotest.(check bool) "disjoint" true (List.for_all (fun x -> not (List.exists (Item.equal x) i6)) i5)

let test_h3_cg_cyclic () =
  Alcotest.(check bool) "CG cycle" true (Anomaly.commit_order_cycle (Committed.extended h3) <> None)

let test_h3_not_view_serializable () =
  match View.view_serializable (Committed.extended h3) with
  | View.Not_serializable -> ()
  | other -> Alcotest.failf "expected Not_serializable, got %a" View.pp_decision other

let test_h3_rigorous () = Alcotest.(check bool) "rigorous" true (Rigorous.all_sites_rigorous h3)

let test_h3_no_global_distortion () =
  Alcotest.(check bool) "no global distortion" true
    (Anomaly.global_view_distortions (Committed.extended h3) = [])

(* ------------------------------------------------------------------ *)
(* The §5.3 race: COMMIT of T_k overtakes PREPARE of T_j at site b, so
   commits happen in opposite orders — CG(H_x) is cyclic. *)
(* ------------------------------------------------------------------ *)

let hx =
  let tj = g 1 and tk = g 2 in
  let ja = inc tj a 0 and jb = inc tj b 0 in
  let ka = inc tk a 0 and kb = inc tk b 0 in
  History.of_ops
    [
      p tj a; p tk a; p tk b;
      lc kb;  (* COMMIT(Tk) arrived at b before PREPARE(Tj) *)
      p tj b;
      lc ja; lc ka;  (* at a: Tj then Tk *)
      lc jb;  (* at b: Tk then Tj *)
      gc tj; gc tk;
    ]

let test_hx_cg_cyclic () =
  Alcotest.(check bool) "CG cycle from overtaking" true (Commit_order_graph.find_cycle hx <> None)

(* ------------------------------------------------------------------ *)
(* History container basics                                            *)
(* ------------------------------------------------------------------ *)

let test_txn_listing () =
  Alcotest.(check int) "h2 txns" 3 (List.length (History.txns h2));
  Alcotest.(check int) "h2 globals" 2 (List.length (History.global_txns h2));
  Alcotest.(check int) "h2 locals" 1 (List.length (History.local_txns h2))

let test_sites_of_txn () =
  let sites = History.sites_of_txn h1 t1 in
  Alcotest.(check int) "T1 spans two sites" 2 (List.length sites)

let test_incomplete_txn () =
  (* Globally committed but the final incarnation never locally commits:
     not complete, so dropped from C(H). *)
  let t9 = g 9 in
  let i9 = inc t9 a 0 in
  let h = History.of_ops [ w i9 xa; p t9 a; gc t9; la i9 ] in
  Alcotest.(check bool) "committed" true (History.is_globally_committed h t9);
  Alcotest.(check bool) "not complete" false (History.is_complete h t9);
  Alcotest.(check int) "dropped from C(H)" 0 (History.length (Committed.extended h))

let test_uncommitted_dropped () =
  let t9 = g 9 in
  let i9 = inc t9 a 0 in
  let h = History.of_ops [ w i9 xa; r i10a xa ] in
  Alcotest.(check int) "nothing committed" 0 (History.length (Committed.extended h))

let test_of_events_sorts () =
  let e op at seq = { History.op; at = Time.of_int at; seq } in
  let h = History.of_events [ e (lc i10a) 30 0; e (r i10a xa) 10 1; e (w i10a xa) 20 2 ] in
  Alcotest.(check bool) "sorted by time" true
    (History.ops h = [ r i10a xa; w i10a xa; lc i10a ])

let test_of_events_seq_tie_break () =
  (* Simultaneous events (different sites, equal tick) are ordered by the
     explicit sequence number, independent of list order. *)
  let e op seq = { History.op; at = Time.of_int 10; seq } in
  let expected = [ r i10a xa; r i10b zb; w i10a xa ] in
  let h1 = History.of_events [ e (r i10a xa) 0; e (r i10b zb) 1; e (w i10a xa) 2 ] in
  let h2 = History.of_events [ e (w i10a xa) 2; e (r i10b zb) 1; e (r i10a xa) 0 ] in
  Alcotest.(check bool) "list order irrelevant" true
    (History.ops h1 = expected && History.ops h2 = expected)

let test_projection_site () =
  let ha = Projection.site h1 a in
  Alcotest.(check bool) "only site a ops" true
    (List.for_all (fun op -> Op.site op = Some a) (History.ops ha));
  Alcotest.(check bool) "prepare included" true
    (History.exists (fun op -> Op.equal op (p t1 a)) ha);
  let ltm = Projection.ltm h1 a in
  Alcotest.(check bool) "ltm excludes prepare" false
    (History.exists (fun op -> Op.equal op (p t1 a)) ltm)

(* ------------------------------------------------------------------ *)
(* Replay semantics                                                    *)
(* ------------------------------------------------------------------ *)

let test_replay_read_own_write () =
  let i = i10a in
  let h = History.of_ops [ w i xa; r i xa; lc i ] in
  let outcome = Replay.run h in
  match outcome.Replay.reads with
  | [ rd ] -> Alcotest.(check bool) "reads own write" true (rd.Replay.from = Some i)
  | _ -> Alcotest.fail "expected one read"

let test_replay_abort_restores () =
  let h = History.of_ops [ w i10a xa; la i10a; r i20a xa; lc i20a ] in
  let outcome = Replay.run h in
  match outcome.Replay.reads with
  | [ rd ] -> Alcotest.(check bool) "reads T0 after abort" true (rd.Replay.from = None)
  | _ -> Alcotest.fail "expected one read"

let test_replay_occurrences () =
  let h = History.of_ops [ r i10a xa; w i20a xa; lc i20a; r i10a xa ] in
  let outcome = Replay.run h in
  let occs = List.map (fun (rd : Replay.read) -> (rd.occurrence, rd.from)) outcome.Replay.reads in
  Alcotest.(check bool) "occurrence 0 from T0, occurrence 1 from T2" true
    (occs = [ (0, None); (1, Some i20a) ])

let test_replay_uncommitted () =
  let h = History.of_ops [ w i10a xa ] in
  let outcome = Replay.run h in
  Alcotest.(check int) "one dangling writer" 1 (List.length outcome.Replay.uncommitted)

(* ------------------------------------------------------------------ *)
(* View serializability on textbook histories                          *)
(* ------------------------------------------------------------------ *)

let test_view_serializable_simple () =
  (* Interleaved but serializable: T1 and T2 on disjoint items. *)
  let h = History.of_ops [ w i10a xa; w i20a ya; lc i10a; lc i20a; gc t1; gc t2 ] in
  match View.view_serializable h with
  | View.Serializable _ -> ()
  | other -> Alcotest.failf "expected Serializable, got %a" View.pp_decision other

let test_view_lost_update () =
  (* Classic lost update: both read x, then both write it. *)
  let h = History.of_ops [ r i10a xa; r i20a xa; w i10a xa; w i20a xa; lc i10a; lc i20a; gc t1; gc t2 ] in
  match View.view_serializable h with
  | View.Not_serializable -> ()
  | other -> Alcotest.failf "expected Not_serializable, got %a" View.pp_decision other

let test_view_too_large () =
  let ops =
    List.concat_map
      (fun n ->
        let i = inc (g n) a 0 in
        [ w i xa; lc i; gc (g n) ])
      (List.init 9 (fun i -> i + 1))
  in
  match View.view_serializable ~limit:8 (History.of_ops ops) with
  | View.Too_large -> ()
  | other -> Alcotest.failf "expected Too_large, got %a" View.pp_decision other

let test_view_equivalent_reflexive () =
  Alcotest.(check bool) "h2 = h2" true (View.view_equivalent h2 h2);
  Alcotest.(check bool) "h1 <> h2" false (View.view_equivalent h1 h2)

(* ------------------------------------------------------------------ *)
(* Rigorousness checker                                                *)
(* ------------------------------------------------------------------ *)

let test_rigorous_dirty_read () =
  (* W1[x] R2[x] with no termination between: not rigorous (not even
     strict). *)
  let h = History.of_ops [ w i10a xa; r i20a xa; lc i10a; lc i20a ] in
  Alcotest.(check bool) "violation found" false (Rigorous.is_rigorous h)

let test_rigorous_read_then_write () =
  (* R1[x] W2[x] with T1 still active: strict but NOT rigorous — the case
     rigorousness adds over strictness. *)
  let h = History.of_ops [ r i10a xa; w i20a xa; lc i10a; lc i20a ] in
  Alcotest.(check bool) "not rigorous" false (Rigorous.is_rigorous h);
  let h' = History.of_ops [ r i10a xa; lc i10a; w i20a xa; lc i20a ] in
  Alcotest.(check bool) "termination first is fine" true (Rigorous.is_rigorous h')

let test_rigorous_abort_counts () =
  let h = History.of_ops [ w i10a xa; la i10a; w i20a xa; lc i20a ] in
  Alcotest.(check bool) "abort is a termination" true (Rigorous.is_rigorous h)

let test_rigorous_reads_dont_conflict () =
  let h = History.of_ops [ r i10a xa; r i20a xa; lc i10a; lc i20a ] in
  Alcotest.(check bool) "R-R ok" true (Rigorous.is_rigorous h)

(* ------------------------------------------------------------------ *)
(* Serialization & commit-order graphs                                 *)
(* ------------------------------------------------------------------ *)

let test_sg_edges () =
  let h = History.of_ops [ w i10a xa; lc i10a; r i20a xa; lc i20a ] in
  let gph = Serialization_graph.build h in
  Alcotest.(check bool) "T1 -> T2" true (Serialization_graph.G.mem_edge gph t1 t2);
  Alcotest.(check bool) "no T2 -> T1" false (Serialization_graph.G.mem_edge gph t2 t1)

let test_sg_same_txn_no_conflict () =
  (* Two incarnations of the same transaction never conflict. *)
  let h = History.of_ops [ w i10a xa; la i10a; w i11a xa; lc i11a ] in
  let gph = Serialization_graph.build h in
  Alcotest.(check int) "no edges" 0 (Serialization_graph.G.n_edges gph)

let test_cg_acyclic_order () =
  let h = History.of_ops [ lc i10a; lc i10b; lc i20a; lc i20b ] in
  Alcotest.(check bool) "acyclic" true (Commit_order_graph.is_acyclic h);
  match Commit_order_graph.serialization_order h with
  | Some [ x; y ] ->
      Alcotest.(check bool) "T1 first" true (Txn.equal x t1 && Txn.equal y t2)
  | _ -> Alcotest.fail "expected order of two"

(* ------------------------------------------------------------------ *)
(* Report                                                              *)
(* ------------------------------------------------------------------ *)

let test_report_h1 () =
  let rep = Report.analyze h1 in
  Alcotest.(check bool) "rigorous" true (Report.rigorous rep);
  Alcotest.(check bool) "distortion reported" true (rep.Report.global_distortions <> []);
  Alcotest.(check bool) "not ok" false (Report.ok rep);
  Alcotest.(check bool) "not serializable" false (Report.serializable rep)

let test_report_clean () =
  let h = History.of_ops [ w i10a xa; lc i10a; gc t1; r i20a xa; lc i20a; gc t2 ] in
  let rep = Report.analyze h in
  Alcotest.(check bool) "ok" true (Report.ok rep);
  Alcotest.(check bool) "serializable" true (Report.serializable rep)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Any serial history of committed single-incarnation transactions is view
   serializable (the identity order witnesses it). *)
let prop_serial_is_view_serializable =
  QCheck.Test.make ~name:"serial histories are view serializable" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 5) (list_of_size (Gen.int_range 1 4) (pair (int_bound 3) bool)))
    (fun txn_specs ->
      let ops =
        List.concat
          (List.mapi
             (fun n spec ->
               let i = inc (g (n + 1)) a 0 in
               List.map
                 (fun (key, is_write) ->
                   let it = Item.make ~site:a ~table:"X" ~key in
                   if is_write then w i it else r i it)
                 spec
               @ [ lc i; gc (g (n + 1)) ])
             txn_specs)
      in
      match View.view_serializable ~limit:5 (History.of_ops ops) with
      | View.Serializable _ -> true
      | View.Too_large -> true
      | View.Not_serializable -> false)

(* Serial histories of committed transactions are rigorous. *)
let prop_serial_is_rigorous =
  QCheck.Test.make ~name:"serial histories are rigorous" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 5) (list_of_size (Gen.int_range 1 4) (pair (int_bound 3) bool)))
    (fun txn_specs ->
      let ops =
        List.concat
          (List.mapi
             (fun n spec ->
               let i = inc (g (n + 1)) a 0 in
               List.map
                 (fun (key, is_write) ->
                   let it = Item.make ~site:a ~table:"X" ~key in
                   if is_write then w i it else r i it)
                 spec
               @ [ lc i ])
             txn_specs)
      in
      Rigorous.is_rigorous (History.of_ops ops))

(* View equivalence is invariant under swapping adjacent non-conflicting
   DML operations of different transactions. *)
let prop_swap_nonconflicting_preserves_view =
  QCheck.Test.make ~name:"swapping non-conflicting ops preserves the view" ~count:200
    QCheck.(pair (int_bound 100) (int_bound 3))
    (fun (seed, _) ->
      let rng = Rng.create ~seed in
      (* Build a small committed two-transaction history. *)
      let mk n =
        let i = inc (g n) a 0 in
        let steps =
          List.init
            (1 + Rng.int rng ~bound:3)
            (fun _ ->
              let it = Item.make ~site:a ~table:"X" ~key:(Rng.int rng ~bound:4) in
              if Rng.bool rng ~p:0.5 then w i it else r i it)
        in
        (i, steps)
      in
      let i1, s1 = mk 1 and i2, s2 = mk 2 in
      let ops = s1 @ s2 @ [ lc i1; lc i2; gc (g 1); gc (g 2) ] in
      let arr = Array.of_list ops in
      (* Find an adjacent non-conflicting DML pair from different txns. *)
      let swap_at = ref None in
      Array.iteri
        (fun idx op ->
          if !swap_at = None && idx + 1 < Array.length arr then
            let next = arr.(idx + 1) in
            if
              Op.is_dml op && Op.is_dml next
              && (not (Txn.equal (Op.txn op) (Op.txn next)))
              && not (Op.conflicts op next)
            then swap_at := Some idx)
        arr;
      match !swap_at with
      | None -> QCheck.assume_fail ()
      | Some idx ->
          let swapped = Array.copy arr in
          swapped.(idx) <- arr.(idx + 1);
          swapped.(idx + 1) <- arr.(idx);
          View.view_equivalent (History.of_ops (Array.to_list arr)) (History.of_ops (Array.to_list swapped)))

(* The pruned-DFS decider must agree with the naive permutation search on
   random histories — including resubmissions (aborted incarnations kept
   by the extended committed projection), the case the paper's criterion
   is about. Witness orders may differ; each must actually witness. *)
let prop_pruned_vsr_agrees_with_naive =
  QCheck.Test.make ~name:"pruned DFS VSR agrees with naive permutation search" ~count:150
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create ~seed in
      let n_txns = 1 + Rng.int rng ~bound:6 in
      let dml i n =
        List.init n (fun _ ->
            let it = Item.make ~site:a ~table:"X" ~key:(Rng.int rng ~bound:3) in
            if Rng.bool rng ~p:0.5 then w i it else r i it)
      in
      let stream k =
        let txn = g k in
        let i0 = inc txn a 0 in
        if Rng.bool rng ~p:0.3 then
          (* unilateral abort after the global commit, then resubmission *)
          let i1 = inc txn a 1 in
          dml i0 (1 + Rng.int rng ~bound:2)
          @ [ p txn a; gc txn; la i0 ]
          @ dml i1 (1 + Rng.int rng ~bound:2)
          @ [ lc i1 ]
        else dml i0 (1 + Rng.int rng ~bound:3) @ [ p txn a; gc txn; lc i0 ]
      in
      let streams = Array.init n_txns (fun k -> ref (stream (k + 1))) in
      let total = Array.fold_left (fun n s -> n + List.length !s) 0 streams in
      let ops = ref [] in
      for _ = 1 to total do
        let nonempty = Array.to_list streams |> List.filter (fun s -> !s <> []) in
        let s = List.nth nonempty (Rng.int rng ~bound:(List.length nonempty)) in
        match !s with
        | [] -> assert false
        | op :: rest ->
            ops := op :: !ops;
            s := rest
      done;
      let h = Committed.extended (History.of_ops (List.rev !ops)) in
      let witnesses order = View.view_equivalent (View.serial_of_order h order) h in
      match (View.view_serializable ~limit:6 h, View.view_serializable_naive ~limit:6 h) with
      | View.Serializable o1, View.Serializable o2 -> witnesses o1 && witnesses o2
      | View.Not_serializable, View.Not_serializable -> true
      | View.Too_large, View.Too_large -> true
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Quasi serializability (the related-work [11] criterion)             *)
(* ------------------------------------------------------------------ *)

let test_qsr_h1_h2_h3 () =
  (* The paper's anomaly histories refute QSR too (their SG cycles involve
     globals). *)
  Alcotest.(check bool) "H1 not QSR" false (Quasi.is_quasi_serializable (Committed.extended h1));
  Alcotest.(check bool) "H2 not QSR" false (Quasi.is_quasi_serializable (Committed.extended h2));
  Alcotest.(check bool) "H3 not QSR" false (Quasi.is_quasi_serializable (Committed.extended h3))

let test_qsr_witness_order () =
  let h = History.of_ops [ w i10a xa; lc i10a; gc t1; r i20a xa; lc i20a; gc t2 ] in
  match Quasi.check h with
  | Quasi.Quasi_serializable [ x; y ] ->
      Alcotest.(check bool) "T1 before T2" true (Txn.equal x t1 && Txn.equal y t2)
  | other -> Alcotest.failf "expected witness, got %a" Quasi.pp_verdict other

let test_qsr_blind_writes_gap () =
  (* The classic VSR-not-CSR history (blind writes): r1[x] w2[x] w1[x]
     w3[x]. Its SG is cyclic through T1/T2, so conflict-based criteria —
     QSR included — reject it; view serializability accepts it. This is
     the paper's §3 remark ("SG(H) may be cyclic but H still view
     serializable") and why its Certifier targets the view criterion. *)
  let i30a = inc t3 a 0 in
  let h =
    History.of_ops
      [
        r i10a xa; w i20a xa; w i10a xa; w i30a xa;
        lc i10a; lc i20a; lc i30a; gc t1; gc t2; gc t3;
      ]
  in
  (match View.view_serializable h with
  | View.Serializable _ -> ()
  | other -> Alcotest.failf "expected VSR, got %a" View.pp_decision other);
  Alcotest.(check bool) "SG cyclic" false (View.conflict_serializable h);
  Alcotest.(check bool) "QSR (conflict-based) rejects" false (Quasi.is_quasi_serializable h)

let test_qsr_local_entanglement () =
  (* A global entangled with a local through the extended projection's
     aborted incarnation (the H1 mechanism, local flavour) refutes QSR. *)
  let l9 = Txn.local ~site:a ~n:9 in
  let i9 = inc l9 a 0 in
  let h =
    History.of_ops
      [
        r i10a xa; w i10a ya;  (* G reads x, writes y *)
        Op.Prepare { txn = t1; site = a; sn = None };
        gc t1; la i10a;  (* unilateral abort after global commit *)
        r i9 ya; w i9 xa; lc i9;  (* local writes x after reading old y *)
        r i11a xa; w i11a ya; lc i11a;  (* resubmission reads x from L9 *)
      ]
  in
  let c = Committed.extended h in
  Alcotest.(check bool) "not QSR" false (Quasi.is_quasi_serializable c);
  match Quasi.check c with
  | Quasi.Not_quasi_serializable scc ->
      Alcotest.(check bool) "SCC holds the global and the local" true
        (List.exists (Txn.equal t1) scc && List.exists (Txn.equal l9) scc)
  | Quasi.Quasi_serializable _ -> Alcotest.fail "expected entanglement"

(* Random commit-order structures: per site a random ordering of a random
   subset of transactions, realized as a history of Local_commit ops. The
   scalable greedy cycle check must agree with the materialized reference
   graph. *)
let commit_history_gen =
  QCheck.Gen.(
    let* n_txns = int_range 1 7 in
    let* n_sites = int_range 1 4 in
    let* site_seqs =
      flatten_l
        (List.init n_sites (fun _ ->
             let* perm = shuffle_l (List.init n_txns (fun i -> i + 1)) in
             let* keep = int_range 0 n_txns in
             return (List.filteri (fun i _ -> i < keep) perm)))
    in
    return (n_sites, site_seqs))

let history_of_commit_seqs seqs =
  History.of_ops
    (List.concat
       (List.mapi
          (fun s seq ->
            let site = Site.of_int s in
            List.map (fun n -> lc (inc (g n) site 0)) seq)
          seqs))

let prop_cg_greedy_matches_reference =
  QCheck.Test.make ~name:"CG greedy cycle check agrees with the materialized graph" ~count:500
    (QCheck.make commit_history_gen)
    (fun (_, seqs) ->
      let h = history_of_commit_seqs seqs in
      let greedy_acyclic = Commit_order_graph.is_acyclic h in
      let reference_acyclic = Commit_order_graph.G.is_acyclic (Commit_order_graph.build h) in
      greedy_acyclic = reference_acyclic)

let prop_cg_order_is_topological =
  QCheck.Test.make ~name:"CG serialization order is a topological order of CG" ~count:500
    (QCheck.make commit_history_gen)
    (fun (_, seqs) ->
      let h = history_of_commit_seqs seqs in
      match Commit_order_graph.serialization_order h with
      | None -> Commit_order_graph.find_cycle h <> None
      | Some order ->
          let gph = Commit_order_graph.build h in
          List.for_all
            (fun (u, v) ->
              let pos x = Option.get (List.find_index (Txn.equal x) order) in
              pos u < pos v)
            (Commit_order_graph.G.edges gph))

let prop_cg_cycle_is_real =
  QCheck.Test.make ~name:"CG extracted cycle is an actual cycle" ~count:500
    (QCheck.make commit_history_gen)
    (fun (_, seqs) ->
      let h = history_of_commit_seqs seqs in
      match Commit_order_graph.find_cycle h with
      | None -> true
      | Some cycle ->
          let gph = Commit_order_graph.build h in
          let n = List.length cycle in
          n > 0
          && List.for_all
               (fun i ->
                 Commit_order_graph.G.mem_edge gph (List.nth cycle i) (List.nth cycle ((i + 1) mod n)))
               (List.init n Fun.id))

(* Random small committed histories: single incarnations, one site, all
   committed. CSR (acyclic SG) must imply VSR, extended must contain
   classical, and the committed projection must be idempotent. *)
let committed_history_gen =
  QCheck.Gen.(
    let* n_txns = int_range 1 4 in
    let* ops_per = flatten_l (List.init n_txns (fun _ -> int_range 1 4)) in
    let* raw =
      flatten_l
        (List.concat
           (List.mapi
              (fun t k ->
                List.init k (fun _ ->
                    let* key = int_range 0 2 in
                    let* w = bool in
                    return (t + 1, key, w)))
              ops_per))
    in
    let* order = shuffle_l raw in
    return order)

let history_of_triples order =
  let ops =
    List.map
      (fun (t, key, is_w) ->
        let i = inc (g t) a 0 in
        let it = Item.make ~site:a ~table:"X" ~key in
        if is_w then w i it else r i it)
      order
  in
  let txns = List.sort_uniq Int.compare (List.map (fun (t, _, _) -> t) order) in
  let tails = List.concat_map (fun t -> [ lc (inc (g t) a 0); gc (g t) ]) txns in
  History.of_ops (ops @ tails)

let prop_csr_implies_vsr =
  QCheck.Test.make ~name:"conflict serializable => view serializable" ~count:300
    (QCheck.make committed_history_gen)
    (fun order ->
      QCheck.assume (order <> []);
      let h = history_of_triples order in
      QCheck.assume (View.conflict_serializable h);
      match View.view_serializable ~limit:5 h with
      | View.Serializable _ -> true
      | View.Too_large -> true
      | View.Not_serializable -> false)

let prop_extended_contains_classical =
  QCheck.Test.make ~name:"classical committed projection is a sub-history of extended" ~count:300
    (QCheck.make committed_history_gen)
    (fun order ->
      QCheck.assume (order <> []);
      let h = history_of_triples order in
      let ext = History.ops (Committed.extended h) in
      let cls = History.ops (Committed.classical h) in
      List.length cls <= List.length ext
      && List.for_all (fun op -> List.exists (Op.equal op) ext) cls)

let prop_committed_idempotent =
  QCheck.Test.make ~name:"extended committed projection is idempotent" ~count:300
    (QCheck.make committed_history_gen)
    (fun order ->
      QCheck.assume (order <> []);
      let h = history_of_triples order in
      let once = Committed.extended h in
      let twice = Committed.extended once in
      History.ops once = History.ops twice)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "history"
    [
      ( "H1-global-view-distortion",
        [
          Alcotest.test_case "committed projection" `Quick test_h1_committed_projection;
          Alcotest.test_case "completeness" `Quick test_h1_complete;
          Alcotest.test_case "locally rigorous" `Quick test_h1_locally_rigorous;
          Alcotest.test_case "distortion detected" `Quick test_h1_global_view_distortion;
          Alcotest.test_case "not view serializable" `Quick test_h1_not_view_serializable;
          Alcotest.test_case "classical projection hides it" `Quick test_h1_classical_is_serializable;
          Alcotest.test_case "SG cyclic" `Quick test_h1_sg_cyclic;
        ] );
      ( "H2-local-view-distortion",
        [
          Alcotest.test_case "CG cyclic" `Quick test_h2_cg_cyclic;
          Alcotest.test_case "not view serializable" `Quick test_h2_not_view_serializable;
          Alcotest.test_case "no global distortion" `Quick test_h2_no_global_distortion;
          Alcotest.test_case "L4's views match the paper" `Quick test_h2_l4_views;
          Alcotest.test_case "rigorous" `Quick test_h2_rigorous;
        ] );
      ( "H3-indirect-distortion",
        [
          Alcotest.test_case "T5, T6 have no direct conflict" `Quick test_h3_no_direct_conflict;
          Alcotest.test_case "CG cyclic" `Quick test_h3_cg_cyclic;
          Alcotest.test_case "not view serializable" `Quick test_h3_not_view_serializable;
          Alcotest.test_case "rigorous" `Quick test_h3_rigorous;
          Alcotest.test_case "no global distortion" `Quick test_h3_no_global_distortion;
        ] );
      ( "Hx-overtaking",
        [ Alcotest.test_case "CG cyclic" `Quick test_hx_cg_cyclic ] );
      ( "history",
        [
          Alcotest.test_case "txn listing" `Quick test_txn_listing;
          Alcotest.test_case "sites of txn" `Quick test_sites_of_txn;
          Alcotest.test_case "incomplete dropped" `Quick test_incomplete_txn;
          Alcotest.test_case "uncommitted dropped" `Quick test_uncommitted_dropped;
          Alcotest.test_case "of_events sorts" `Quick test_of_events_sorts;
          Alcotest.test_case "of_events seq tie-break" `Quick test_of_events_seq_tie_break;
          Alcotest.test_case "projections" `Quick test_projection_site;
        ] );
      ( "replay",
        [
          Alcotest.test_case "read own write" `Quick test_replay_read_own_write;
          Alcotest.test_case "abort restores" `Quick test_replay_abort_restores;
          Alcotest.test_case "occurrences" `Quick test_replay_occurrences;
          Alcotest.test_case "uncommitted tracked" `Quick test_replay_uncommitted;
        ] );
      ( "view",
        [
          Alcotest.test_case "simple serializable" `Quick test_view_serializable_simple;
          Alcotest.test_case "lost update" `Quick test_view_lost_update;
          Alcotest.test_case "too large" `Quick test_view_too_large;
          Alcotest.test_case "equivalence" `Quick test_view_equivalent_reflexive;
          q prop_serial_is_view_serializable;
          q prop_swap_nonconflicting_preserves_view;
          q prop_pruned_vsr_agrees_with_naive;
        ] );
      ( "rigorous",
        [
          Alcotest.test_case "dirty read" `Quick test_rigorous_dirty_read;
          Alcotest.test_case "read-then-write" `Quick test_rigorous_read_then_write;
          Alcotest.test_case "abort terminates" `Quick test_rigorous_abort_counts;
          Alcotest.test_case "R-R ok" `Quick test_rigorous_reads_dont_conflict;
          q prop_serial_is_rigorous;
        ] );
      ( "graphs",
        [
          Alcotest.test_case "SG edges" `Quick test_sg_edges;
          Alcotest.test_case "incarnations don't conflict" `Quick test_sg_same_txn_no_conflict;
          Alcotest.test_case "CG order" `Quick test_cg_acyclic_order;
          q prop_cg_greedy_matches_reference;
          q prop_cg_order_is_topological;
          q prop_cg_cycle_is_real;
        ] );
      ( "projections-properties",
        [
          q prop_csr_implies_vsr;
          q prop_extended_contains_classical;
          q prop_committed_idempotent;
        ] );
      ( "values",
        [
          Alcotest.test_case "consistent annotated trace" `Quick (fun () ->
              let h =
                History.of_ops
                  [
                    Op.read ~value:0 ~inc:i10a ~item:xa ~from:None ();
                    Op.write ~value:5 ~inc:i10a ~item:xa ();
                    lc i10a;
                    Op.read ~value:5 ~inc:i20a ~item:xa ~from:(Some i10a) ();
                    lc i20a;
                  ]
              in
              Alcotest.(check (list string)) "no mismatches" []
                (List.map (Fmt.str "%a" Values.pp_mismatch) (Values.check h)));
          Alcotest.test_case "wrong observed value detected" `Quick (fun () ->
              let h =
                History.of_ops
                  [
                    Op.write ~value:5 ~inc:i10a ~item:xa ();
                    lc i10a;
                    Op.read ~value:99 ~inc:i20a ~item:xa ~from:(Some i10a) ();
                  ]
              in
              Alcotest.(check int) "one mismatch" 1 (List.length (Values.check h)));
          Alcotest.test_case "wrong reads-from detected" `Quick (fun () ->
              let h =
                History.of_ops
                  [
                    Op.write ~value:5 ~inc:i10a ~item:xa ();
                    lc i10a;
                    Op.read ~value:5 ~inc:i20a ~item:xa ~from:(Some i20b) ();
                  ]
              in
              Alcotest.(check int) "one mismatch" 1 (List.length (Values.check h)));
          Alcotest.test_case "abort restores values" `Quick (fun () ->
              let h =
                History.of_ops
                  [
                    Op.write ~value:5 ~inc:i10a ~item:xa ();
                    lc i10a;
                    Op.write ~value:7 ~inc:i20a ~item:xa ();
                    la i20a;
                    Op.read ~value:5 ~inc:i30a ~item:xa ~from:(Some i10a) ();
                  ]
              in
              Alcotest.(check bool) "consistent" true (Values.consistent h));
          Alcotest.test_case "unannotated ops never violate" `Quick (fun () ->
              Alcotest.(check bool) "h1" true (Values.consistent h1);
              Alcotest.(check bool) "h2" true (Values.consistent h2);
              Alcotest.(check bool) "h3" true (Values.consistent h3));
          Alcotest.test_case "final values" `Quick (fun () ->
              let h =
                History.of_ops
                  [
                    Op.write ~value:5 ~inc:i10a ~item:xa ();
                    Op.write ~value:9 ~inc:i10a ~item:ya ();
                    lc i10a;
                    Op.write ~value:7 ~inc:i20a ~item:xa ();
                    la i20a;
                  ]
              in
              Alcotest.(check (list (pair string int))) "finals"
                [ ("Xa", 5); ("Ya", 9) ]
                (List.map (fun (i, v) -> (Item.show i, v)) (Values.final_values h)));
        ] );
      ( "serial-format",
        [
          Alcotest.test_case "round trip H1" `Quick (fun () ->
              let s = Serial_format.to_string h1 in
              Alcotest.(check (list string)) "ops preserved"
                (List.map Op.show (History.ops h1))
                (List.map Op.show (History.ops (Serial_format.of_string s)));
              (* reads-from annotations survive too *)
              Alcotest.(check bool) "structural equality" true
                (History.ops (Serial_format.of_string s) = History.ops h1));
          Alcotest.test_case "round trip H2/H3/Hx" `Quick (fun () ->
              List.iter
                (fun h ->
                  let h' = Serial_format.of_string (Serial_format.to_string h) in
                  Alcotest.(check bool) "identical" true (History.ops h' = History.ops h))
                [ h2; h3; hx ]);
          Alcotest.test_case "comments and blanks ignored" `Quick (fun () ->
              let h = Serial_format.of_string "# hello\n\nGC G1\n  \nLC G1 0 0\n" in
              Alcotest.(check int) "two ops" 2 (History.length h));
          Alcotest.test_case "parse errors carry line numbers" `Quick (fun () ->
              match Serial_format.of_string "GC G1\nBOGUS x\n" with
              | exception Serial_format.Parse_error (2, _) -> ()
              | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
              | _ -> Alcotest.fail "expected parse error");
          Alcotest.test_case "analysis of a reparsed history agrees" `Quick (fun () ->
              let h' = Serial_format.of_string (Serial_format.to_string h2) in
              let r = Report.analyze h2 and r' = Report.analyze h' in
              Alcotest.(check bool) "same verdict" true (r.Report.view = r'.Report.view);
              Alcotest.(check bool) "same cg" true ((r.Report.cg_cycle = None) = (r'.Report.cg_cycle = None)));
        ] );
      ( "quasi-serializability",
        [
          Alcotest.test_case "H1/H2/H3 refute QSR" `Quick test_qsr_h1_h2_h3;
          Alcotest.test_case "witness order" `Quick test_qsr_witness_order;
          Alcotest.test_case "blind-write gap vs VSR" `Quick test_qsr_blind_writes_gap;
          Alcotest.test_case "global-local entanglement" `Quick test_qsr_local_entanglement;
        ] );
      ( "report",
        [
          Alcotest.test_case "H1 report" `Quick test_report_h1;
          Alcotest.test_case "clean report" `Quick test_report_clean;
        ] );
    ]

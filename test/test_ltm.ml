(* Tests for hermes.ltm: lock table, decomposition, deadlock detection,
   DLU enforcement, transaction lifecycle, failure injection — and the
   central property: the S2PL scheduler produces rigorous histories. *)

open Hermes_kernel
open Hermes_ltm
module Engine = Hermes_sim.Engine
module Database = Hermes_store.Database
module Row = Hermes_store.Row
module Rigorous = Hermes_history.Rigorous
module History = Hermes_history.History
module Op = Hermes_history.Op

let site0 = Site.of_int 0

let ginc n = Txn.Incarnation.make ~txn:(Txn.global n) ~site:site0 ~inc:0
let linc n = Txn.Incarnation.make ~txn:(Txn.local ~site:site0 ~n) ~site:site0 ~inc:0

type world = { engine : Engine.t; db : Database.t; ltm : Ltm.t; trace : Trace.t }

let make_world ?(config = Ltm_config.default) () =
  let engine = Engine.create () in
  let db = Database.create ~site:site0 in
  let trace = Trace.create () in
  let ltm = Ltm.create ~engine ~db ~config ~trace () in
  List.iter (fun k -> ignore (Database.write db ~table:"X" ~key:k (Row.initial 100))) (List.init 10 Fun.id);
  { engine; db; ltm; trace }

let sel keys = Command.Select { table = "X"; keys }
let upd key delta = Command.Update { table = "X"; key; delta }

(* ------------------------------------------------------------------ *)
(* Lock table                                                          *)
(* ------------------------------------------------------------------ *)

let test_lock_shared_compatible () =
  let t = Lock.create () in
  let k = ("X", 1) in
  Alcotest.(check bool) "first S" true (Lock.acquire t k ~owner:1 ~mode:Lock.Shared ~on_grant:ignore = Lock.Granted);
  Alcotest.(check bool) "second S" true (Lock.acquire t k ~owner:2 ~mode:Lock.Shared ~on_grant:ignore = Lock.Granted);
  Alcotest.(check int) "two holders" 2 (List.length (Lock.holders t k))

let test_lock_exclusive_blocks () =
  let t = Lock.create () in
  let k = ("X", 1) in
  let granted = ref false in
  ignore (Lock.acquire t k ~owner:1 ~mode:Lock.Exclusive ~on_grant:ignore);
  Alcotest.(check bool) "X blocks S" true
    (Lock.acquire t k ~owner:2 ~mode:Lock.Shared ~on_grant:(fun () -> granted := true) = Lock.Waiting);
  Alcotest.(check bool) "not yet" false !granted;
  let cbs = Lock.release_all t ~owner:1 in
  List.iter (fun cb -> cb ()) cbs;
  Alcotest.(check bool) "granted on release" true !granted

let test_lock_reacquire () =
  let t = Lock.create () in
  let k = ("X", 1) in
  ignore (Lock.acquire t k ~owner:1 ~mode:Lock.Exclusive ~on_grant:ignore);
  Alcotest.(check bool) "S under X" true (Lock.acquire t k ~owner:1 ~mode:Lock.Shared ~on_grant:ignore = Lock.Granted);
  Alcotest.(check bool) "X under X" true (Lock.acquire t k ~owner:1 ~mode:Lock.Exclusive ~on_grant:ignore = Lock.Granted)

let test_lock_upgrade_sole_holder () =
  let t = Lock.create () in
  let k = ("X", 1) in
  ignore (Lock.acquire t k ~owner:1 ~mode:Lock.Shared ~on_grant:ignore);
  Alcotest.(check bool) "upgrade granted" true
    (Lock.acquire t k ~owner:1 ~mode:Lock.Exclusive ~on_grant:ignore = Lock.Granted);
  Alcotest.(check bool) "now exclusive" true (Lock.holders t k = [ (1, Lock.Exclusive) ])

let test_lock_upgrade_waits () =
  let t = Lock.create () in
  let k = ("X", 1) in
  let upgraded = ref false in
  ignore (Lock.acquire t k ~owner:1 ~mode:Lock.Shared ~on_grant:ignore);
  ignore (Lock.acquire t k ~owner:2 ~mode:Lock.Shared ~on_grant:ignore);
  Alcotest.(check bool) "upgrade waits" true
    (Lock.acquire t k ~owner:1 ~mode:Lock.Exclusive ~on_grant:(fun () -> upgraded := true) = Lock.Waiting);
  let cbs = Lock.release_all t ~owner:2 in
  List.iter (fun cb -> cb ()) cbs;
  Alcotest.(check bool) "upgraded when sole" true !upgraded

let test_lock_fifo_no_overtaking () =
  let t = Lock.create () in
  let k = ("X", 1) in
  let order = ref [] in
  ignore (Lock.acquire t k ~owner:1 ~mode:Lock.Exclusive ~on_grant:ignore);
  ignore (Lock.acquire t k ~owner:2 ~mode:Lock.Exclusive ~on_grant:(fun () -> order := 2 :: !order));
  (* owner 3 wants S; compatible with nothing while 2 is queued first *)
  ignore (Lock.acquire t k ~owner:3 ~mode:Lock.Shared ~on_grant:(fun () -> order := 3 :: !order));
  List.iter (fun cb -> cb ()) (Lock.release_all t ~owner:1);
  Alcotest.(check (list int)) "2 granted first, 3 still behind" [ 2 ] (List.rev !order);
  List.iter (fun cb -> cb ()) (Lock.release_all t ~owner:2);
  Alcotest.(check (list int)) "then 3" [ 2; 3 ] (List.rev !order)

let test_lock_cancel_waits () =
  let t = Lock.create () in
  let k = ("X", 1) in
  let granted3 = ref false in
  ignore (Lock.acquire t k ~owner:1 ~mode:Lock.Exclusive ~on_grant:ignore);
  ignore (Lock.acquire t k ~owner:2 ~mode:Lock.Exclusive ~on_grant:(fun () -> Alcotest.fail "2 was cancelled"));
  ignore (Lock.acquire t k ~owner:3 ~mode:Lock.Exclusive ~on_grant:(fun () -> granted3 := true));
  List.iter (fun cb -> cb ()) (Lock.cancel_waits t ~owner:2);
  List.iter (fun cb -> cb ()) (Lock.release_all t ~owner:1);
  Alcotest.(check bool) "3 granted after cancel of 2" true !granted3

let test_lock_blockers () =
  let t = Lock.create () in
  let k = ("X", 1) in
  ignore (Lock.acquire t k ~owner:1 ~mode:Lock.Shared ~on_grant:ignore);
  ignore (Lock.acquire t k ~owner:2 ~mode:Lock.Shared ~on_grant:ignore);
  Alcotest.(check (list int)) "X blocked by both readers" [ 1; 2 ]
    (List.sort Int.compare (Lock.blockers t k ~owner:3 ~mode:Lock.Exclusive));
  Alcotest.(check (list int)) "S blocked by nobody" [] (Lock.blockers t k ~owner:3 ~mode:Lock.Shared)

(* ------------------------------------------------------------------ *)
(* Decomposition (DDF)                                                 *)
(* ------------------------------------------------------------------ *)

let test_decompose_update_missing () =
  let w = make_world () in
  Alcotest.(check int) "existing row: R;W" 2
    (List.length (Decompose.elementary w.db (upd 1 5)));
  Alcotest.(check int) "missing row: nothing" 0
    (List.length (Decompose.elementary w.db (upd 99 5)))

let test_decompose_select_range () =
  let w = make_world () in
  let elems = Decompose.elementary w.db (Command.Select_range { table = "X"; lo = 3; hi = 5 }) in
  Alcotest.(check (list int)) "reads existing keys" [ 3; 4; 5 ]
    (List.map (fun (e : Decompose.elementary) -> e.Decompose.key) elems)

let test_decompose_state_dependence () =
  (* The H1 phenomenon: deleting a row changes a later decomposition. *)
  let w = make_world () in
  Alcotest.(check int) "before delete" 2 (List.length (Decompose.elementary w.db (upd 1 5)));
  ignore (Database.delete w.db ~table:"X" ~key:1);
  Alcotest.(check int) "after delete" 0 (List.length (Decompose.elementary w.db (upd 1 5)))

let test_decompose_update_range () =
  let w = make_world () in
  let cmd = Command.Update_range { table = "X"; lo = 2; hi = 4; delta = 1 } in
  (* Plan: exclusive locks on existing keys; decomposition: R;W each. *)
  Alcotest.(check bool) "exclusive locks" true
    (List.for_all (fun (_, m) -> m = Lock.Exclusive) (Decompose.plan w.db cmd));
  Alcotest.(check int) "R;W per row" 6 (List.length (Decompose.elementary w.db cmd));
  (* The range decomposition is state-dependent: deleting a row shrinks
     it, inserting one grows it — the H1 phenomenon for scans. *)
  ignore (Database.delete w.db ~table:"X" ~key:3);
  Alcotest.(check int) "after delete" 4 (List.length (Decompose.elementary w.db cmd));
  ignore (Database.write w.db ~table:"X" ~key:3 (Row.initial 1));
  ignore (Database.write w.db ~table:"X" ~key:15 (Row.initial 1));
  Alcotest.(check int) "key outside range ignored" 6 (List.length (Decompose.elementary w.db cmd))

let test_exec_update_range () =
  let w = make_world () in
  let txn = Ltm.begin_txn w.ltm ~owner:(ginc 1) in
  let result = ref None in
  Ltm.exec w.ltm txn (Command.Update_range { table = "X"; lo = 0; hi = 3; delta = 5 })
    ~on_done:(fun r -> result := Some r);
  Engine.run w.engine;
  (match !result with
  | Some (Ltm.Done (Command.Count 4)) -> ()
  | _ -> Alcotest.fail "expected Count 4");
  Ltm.commit w.ltm txn ~on_done:ignore;
  Engine.run w.engine;
  for k = 0 to 3 do
    Alcotest.(check int) "updated" 105 (Row.value (Option.get (Database.read w.db ~table:"X" ~key:k)))
  done;
  Alcotest.(check int) "untouched" 100 (Row.value (Option.get (Database.read w.db ~table:"X" ~key:4)))

let test_decompose_plan_modes () =
  let w = make_world () in
  (match Decompose.plan w.db (sel [ 1; 2 ]) with
  | [ (1, Lock.Shared); (2, Lock.Shared) ] -> ()
  | _ -> Alcotest.fail "select plan");
  match Decompose.plan w.db (upd 1 5) with
  | [ (1, Lock.Exclusive) ] -> ()
  | _ -> Alcotest.fail "update plan"

(* ------------------------------------------------------------------ *)
(* LTM lifecycle                                                       *)
(* ------------------------------------------------------------------ *)

let test_exec_commit () =
  let w = make_world () in
  let txn = Ltm.begin_txn w.ltm ~owner:(ginc 1) in
  let result = ref None in
  Ltm.exec w.ltm txn (upd 1 5) ~on_done:(fun r -> result := Some r);
  Engine.run w.engine;
  (match !result with
  | Some (Ltm.Done (Command.Count 1)) -> ()
  | _ -> Alcotest.fail "expected Count 1");
  let committed = ref false in
  Ltm.commit w.ltm txn ~on_done:(fun r -> committed := r = Ltm.Committed);
  Engine.run w.engine;
  Alcotest.(check bool) "committed" true !committed;
  Alcotest.(check int) "value updated" 105 (Row.value (Option.get (Database.read w.db ~table:"X" ~key:1)))

let test_abort_rolls_back () =
  let w = make_world () in
  let txn = Ltm.begin_txn w.ltm ~owner:(ginc 1) in
  Ltm.exec w.ltm txn (upd 1 5) ~on_done:ignore;
  Engine.run w.engine;
  Ltm.abort w.ltm txn;
  Alcotest.(check int) "value restored" 100 (Row.value (Option.get (Database.read w.db ~table:"X" ~key:1)));
  let refused = ref false in
  Ltm.commit w.ltm txn ~on_done:(fun r -> refused := r <> Ltm.Committed);
  Engine.run w.engine;
  Alcotest.(check bool) "commit refused after abort" true !refused

let test_unilateral_abort_uan () =
  let w = make_world () in
  let txn = Ltm.begin_txn w.ltm ~owner:(ginc 1) in
  Ltm.exec w.ltm txn (upd 1 5) ~on_done:ignore;
  Engine.run w.engine;
  let notified = ref false in
  Ltm.set_uan txn (fun () -> notified := true);
  Alcotest.(check bool) "alive before" true (Ltm.is_alive txn);
  Alcotest.(check bool) "aborted" true (Ltm.unilateral_abort w.ltm txn);
  Engine.run w.engine;
  Alcotest.(check bool) "UAN delivered" true !notified;
  Alcotest.(check bool) "not alive after" false (Ltm.is_alive txn);
  Alcotest.(check bool) "second abort is a no-op" false (Ltm.unilateral_abort w.ltm txn)

let test_lock_conflict_serializes () =
  let w = make_world () in
  let t1 = Ltm.begin_txn w.ltm ~owner:(ginc 1) in
  let t2 = Ltm.begin_txn w.ltm ~owner:(ginc 2) in
  let order = ref [] in
  Ltm.exec w.ltm t1 (upd 1 5) ~on_done:(fun _ -> order := 1 :: !order);
  Ltm.exec w.ltm t2 (upd 1 7) ~on_done:(fun _ -> order := 2 :: !order);
  (* Run short of the lock timeout: t2 must still be waiting on t1's X
     lock (strict 2PL holds it until commit). *)
  Engine.run ~until:(Time.of_int 10_000) w.engine;
  Alcotest.(check (list int)) "only t1 done" [ 1 ] (List.rev !order);
  Ltm.commit w.ltm t1 ~on_done:ignore;
  Engine.run w.engine;
  Alcotest.(check (list int)) "t2 done after t1 commits" [ 1; 2 ] (List.rev !order);
  Ltm.commit w.ltm t2 ~on_done:ignore;
  Engine.run w.engine;
  Alcotest.(check int) "both applied" 112 (Row.value (Option.get (Database.read w.db ~table:"X" ~key:1)))

let test_lock_timeout_aborts () =
  let config = { Ltm_config.default with Ltm_config.lock_timeout = 1_000 } in
  let w = make_world ~config () in
  let t1 = Ltm.begin_txn w.ltm ~owner:(ginc 1) in
  let t2 = Ltm.begin_txn w.ltm ~owner:(ginc 2) in
  Ltm.exec w.ltm t1 (upd 1 5) ~on_done:ignore;
  let result = ref None in
  Ltm.exec w.ltm t2 (upd 1 7) ~on_done:(fun r -> result := Some r);
  (* t1 never commits; t2 must time out. *)
  Engine.run w.engine;
  match !result with
  | Some (Ltm.Failed Ltm.Lock_timeout) -> ()
  | _ -> Alcotest.fail "expected lock timeout"

let test_deadlock_detection () =
  let config = { Ltm_config.default with Ltm_config.deadlock = Ltm_config.Detection_and_timeout } in
  let w = make_world ~config () in
  let t1 = Ltm.begin_txn w.ltm ~owner:(ginc 1) in
  let t2 = Ltm.begin_txn w.ltm ~owner:(ginc 2) in
  let r1 = ref None and r2 = ref None in
  (* t1 takes X(1), t2 takes X(2), then each wants the other's key. *)
  Ltm.exec w.ltm t1 (upd 1 5) ~on_done:(fun _ ->
      Ltm.exec w.ltm t1 (upd 2 5) ~on_done:(fun r -> r1 := Some r));
  Ltm.exec w.ltm t2 (upd 2 7) ~on_done:(fun _ ->
      Ltm.exec w.ltm t2 (upd 1 7) ~on_done:(fun r -> r2 := Some r));
  Engine.run w.engine;
  let is_deadlock = function Some (Ltm.Failed Ltm.Deadlock_victim) -> true | _ -> false in
  let is_done r = match r with Some (Ltm.Done _) -> true | _ -> false in
  Alcotest.(check bool) "one victim" true (is_deadlock !r1 || is_deadlock !r2);
  (* The survivor proceeds once the victim's locks are released. *)
  Alcotest.(check bool) "one survivor" true (is_done !r1 || is_done !r2)

let test_wait_die () =
  let config = { Ltm_config.default with Ltm_config.deadlock = Ltm_config.Wait_die } in
  let w = make_world ~config () in
  let old_txn = Ltm.begin_txn w.ltm ~owner:(ginc 1) in
  let young = Ltm.begin_txn w.ltm ~owner:(ginc 2) in
  let r_young = ref None and r_old = ref None in
  (* The older transaction holds key 1; the younger requester dies. *)
  Ltm.exec w.ltm old_txn (upd 1 5) ~on_done:ignore;
  Ltm.exec w.ltm young (upd 1 7) ~on_done:(fun r -> r_young := Some r);
  Engine.run ~until:(Time.of_int 10_000) w.engine;
  (match !r_young with
  | Some (Ltm.Failed Ltm.Deadlock_victim) -> ()
  | _ -> Alcotest.fail "young requester must die");
  (* The reverse: an older requester waits for a younger holder. *)
  let young2 = Ltm.begin_txn w.ltm ~owner:(ginc 3) in
  Ltm.exec w.ltm young2 (upd 2 5) ~on_done:ignore;
  Engine.run ~until:(Time.of_int 20_000) w.engine;
  Ltm.exec w.ltm old_txn (upd 2 7) ~on_done:(fun r -> r_old := Some r);
  Engine.run ~until:(Time.of_int 30_000) w.engine;
  Alcotest.(check bool) "older requester still waiting" true (!r_old = None);
  Ltm.commit w.ltm young2 ~on_done:ignore;
  Engine.run ~until:(Time.of_int 40_000) w.engine;
  match !r_old with
  | Some (Ltm.Done _) -> ()
  | _ -> Alcotest.fail "older requester proceeds after the young holder commits"

let test_wound_wait () =
  let config = { Ltm_config.default with Ltm_config.deadlock = Ltm_config.Wound_wait } in
  let w = make_world ~config () in
  let old_txn = Ltm.begin_txn w.ltm ~owner:(ginc 1) in
  let young = Ltm.begin_txn w.ltm ~owner:(ginc 2) in
  let wounded = ref false and r_old = ref None in
  Ltm.set_uan young (fun () -> wounded := true);
  (* The younger transaction holds key 1; the older requester wounds it. *)
  Ltm.exec w.ltm young (upd 1 5) ~on_done:ignore;
  Engine.run ~until:(Time.of_int 5_000) w.engine;
  Ltm.exec w.ltm old_txn (upd 1 7) ~on_done:(fun r -> r_old := Some r);
  Engine.run ~until:(Time.of_int 20_000) w.engine;
  Alcotest.(check bool) "young holder wounded (UAN fired)" true !wounded;
  Alcotest.(check bool) "young holder dead" false (Ltm.is_active young);
  (match !r_old with
  | Some (Ltm.Done _) -> ()
  | _ -> Alcotest.fail "older requester proceeds after wounding");
  (* Rollback of the wounded holder happened before the wound-winner's
     read: value is 100 + 7. *)
  Ltm.commit w.ltm old_txn ~on_done:ignore;
  Engine.run w.engine;
  Alcotest.(check int) "no lost update" 107 (Row.value (Option.get (Database.read w.db ~table:"X" ~key:1)))

(* ------------------------------------------------------------------ *)
(* DLU                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dlu_denies_local_update () =
  let w = make_world () in
  Bound.bind (Ltm.bound_registry w.ltm) [ Item.make ~site:site0 ~table:"X" ~key:1 ];
  let txn = Ltm.begin_txn w.ltm ~owner:(linc 1) in
  let result = ref None in
  Ltm.exec w.ltm txn (upd 1 5) ~on_done:(fun r -> result := Some r);
  Engine.run w.engine;
  (match !result with
  | Some (Ltm.Failed Ltm.Dlu_denied) -> ()
  | _ -> Alcotest.fail "expected DLU denial");
  Alcotest.(check int) "denial counted" 1 (Bound.denials (Ltm.bound_registry w.ltm))

let test_dlu_allows_local_read () =
  let w = make_world () in
  Bound.bind (Ltm.bound_registry w.ltm) [ Item.make ~site:site0 ~table:"X" ~key:1 ];
  let txn = Ltm.begin_txn w.ltm ~owner:(linc 1) in
  let result = ref None in
  Ltm.exec w.ltm txn (sel [ 1 ]) ~on_done:(fun r -> result := Some r);
  Engine.run w.engine;
  match !result with
  | Some (Ltm.Done (Command.Rows [ (1, 100) ])) -> ()
  | _ -> Alcotest.fail "local read of bound data must succeed"

let test_dlu_allows_global_update () =
  let w = make_world () in
  Bound.bind (Ltm.bound_registry w.ltm) [ Item.make ~site:site0 ~table:"X" ~key:1 ];
  let txn = Ltm.begin_txn w.ltm ~owner:(ginc 1) in
  let result = ref None in
  Ltm.exec w.ltm txn (upd 1 5) ~on_done:(fun r -> result := Some r);
  Engine.run w.engine;
  match !result with
  | Some (Ltm.Done (Command.Count 1)) -> ()
  | _ -> Alcotest.fail "global update of bound data is not DLU's business"

let test_dlu_block_mode () =
  (* Block mode: the local write waits until the data are unbound, then
     proceeds. *)
  let config = { Ltm_config.default with Ltm_config.dlu = Ltm_config.Block } in
  let w = make_world ~config () in
  let item = Item.make ~site:site0 ~table:"X" ~key:1 in
  Bound.bind (Ltm.bound_registry w.ltm) [ item ];
  let txn = Ltm.begin_txn w.ltm ~owner:(linc 1) in
  let result = ref None in
  Ltm.exec w.ltm txn (upd 1 5) ~on_done:(fun r -> result := Some r);
  Engine.run ~until:(Time.of_int 10_000) w.engine;
  Alcotest.(check bool) "still waiting" true (!result = None);
  Bound.unbind (Ltm.bound_registry w.ltm) [ item ];
  Engine.run w.engine;
  (match !result with
  | Some (Ltm.Done (Command.Count 1)) -> ()
  | _ -> Alcotest.fail "expected the blocked write to proceed after unbind");
  (* And the budget: a permanently bound item eventually aborts. *)
  let w2 = make_world ~config () in
  Bound.bind (Ltm.bound_registry w2.ltm) [ item ];
  let txn2 = Ltm.begin_txn w2.ltm ~owner:(linc 2) in
  let result2 = ref None in
  Ltm.exec w2.ltm txn2 (upd 1 5) ~on_done:(fun r -> result2 := Some r);
  Engine.run w2.engine;
  match !result2 with
  | Some (Ltm.Failed Ltm.Dlu_denied) -> ()
  | _ -> Alcotest.fail "expected budget-exhausted denial"

let test_dlu_ignore_mode () =
  let config = { Ltm_config.default with Ltm_config.dlu = Ltm_config.Ignore } in
  let w = make_world ~config () in
  Bound.bind (Ltm.bound_registry w.ltm) [ Item.make ~site:site0 ~table:"X" ~key:1 ];
  let txn = Ltm.begin_txn w.ltm ~owner:(linc 1) in
  let result = ref None in
  Ltm.exec w.ltm txn (upd 1 5) ~on_done:(fun r -> result := Some r);
  Engine.run w.engine;
  match !result with
  | Some (Ltm.Done _) -> ()
  | _ -> Alcotest.fail "Ignore mode lets the violation through"

let test_bound_refcount () =
  let b = Bound.create () in
  let item = Item.make ~site:site0 ~table:"X" ~key:1 in
  Bound.bind b [ item ];
  Bound.bind b [ item ];
  Bound.unbind b [ item ];
  Alcotest.(check bool) "still bound" true (Bound.is_bound b ~table:"X" ~key:1);
  Bound.unbind b [ item ];
  Alcotest.(check bool) "now free" false (Bound.is_bound b ~table:"X" ~key:1)

(* ------------------------------------------------------------------ *)
(* Failure injector                                                    *)
(* ------------------------------------------------------------------ *)

let test_injector_caps_aborts () =
  let w = make_world () in
  let rng = Rng.create ~seed:5 in
  let config =
    { Failure.disabled with Failure.p_active = 1.0; delay_mean = 10; max_per_victim = 2 }
  in
  let inj = Failure.attach ~engine:w.engine ~rng ~config w.ltm in
  (* Same logical transaction begins 5 incarnations; at most 2 die. *)
  for k = 0 to 4 do
    let owner = Txn.Incarnation.make ~txn:(Txn.global 1) ~site:site0 ~inc:k in
    let txn = Ltm.begin_txn w.ltm ~owner in
    Ltm.exec w.ltm txn (upd (k mod 3) 1) ~on_done:ignore;
    Engine.run w.engine;
    if Ltm.is_alive txn then Ltm.commit w.ltm txn ~on_done:ignore;
    Engine.run w.engine
  done;
  Alcotest.(check bool) "TW cap respected" true (Failure.injected inj <= 2)

let test_site_crash_collective_abort () =
  (* A crash aborts every live transaction at once (collective unilateral
     abort, paper §1). *)
  let w = make_world () in
  let rng = Rng.create ~seed:5 in
  let config = { Failure.disabled with Failure.crash_interval = 1_000; crash_horizon = 5_000 } in
  let inj = Failure.attach ~engine:w.engine ~rng ~config w.ltm in
  let txns = List.init 4 (fun n -> Ltm.begin_txn w.ltm ~owner:(ginc n)) in
  List.iteri (fun i txn -> Ltm.exec w.ltm txn (upd i 1) ~on_done:ignore) txns;
  Engine.run w.engine;
  Alcotest.(check bool) "at least one crash" true (Failure.crash_count inj >= 1);
  List.iter
    (fun txn -> Alcotest.(check bool) "all victims aborted" false (Ltm.is_active txn))
    txns;
  (* Rollback happened: all values restored. *)
  for k = 0 to 3 do
    Alcotest.(check int) "restored" 100 (Row.value (Option.get (Database.read w.db ~table:"X" ~key:k)))
  done

let test_injector_spares_locals () =
  let w = make_world () in
  let rng = Rng.create ~seed:5 in
  let config =
    { Failure.disabled with Failure.p_active = 1.0; delay_mean = 10; max_per_victim = 10 }
  in
  let inj = Failure.attach ~engine:w.engine ~rng ~config w.ltm in
  for n = 0 to 4 do
    let txn = Ltm.begin_txn w.ltm ~owner:(linc n) in
    Ltm.exec w.ltm txn (upd (n mod 3) 1) ~on_done:ignore;
    Engine.run w.engine;
    if Ltm.is_alive txn then Ltm.commit w.ltm txn ~on_done:ignore;
    Engine.run w.engine
  done;
  Alcotest.(check int) "locals spared" 0 (Failure.injected inj)

(* ------------------------------------------------------------------ *)
(* The central property: S2PL yields rigorous histories                *)
(* ------------------------------------------------------------------ *)

(* Random concurrent transactions against one LTM; the recorded history
   must be rigorous (and with the non-rigorous ablation, eventually not). *)
let run_random_workload ~config ~seed ~n_txns =
  let w = make_world ~config () in
  let rng = Rng.create ~seed in
  let rec client n =
    if n < n_txns then begin
      let txn = Ltm.begin_txn w.ltm ~owner:(ginc n) in
      let n_cmds = 1 + Rng.int rng ~bound:3 in
      let rec step i =
        if i >= n_cmds then Ltm.commit w.ltm txn ~on_done:(fun _ -> client (n + 1))
        else
          let cmd =
            if Rng.bool rng ~p:0.5 then sel [ Rng.int rng ~bound:5 ] else upd (Rng.int rng ~bound:5) 1
          in
          Ltm.exec w.ltm txn cmd ~on_done:(function
            | Ltm.Done _ -> step (i + 1)
            | Ltm.Failed _ -> client (n + 1))
      in
      step 0
    end
  in
  (* Several interleaved clients with distinct txn id ranges. *)
  let rec client2 base n =
    if n < n_txns then begin
      let txn = Ltm.begin_txn w.ltm ~owner:(ginc (base + n)) in
      let cmd = if Rng.bool rng ~p:0.5 then sel [ Rng.int rng ~bound:5 ] else upd (Rng.int rng ~bound:5) 1 in
      Ltm.exec w.ltm txn cmd ~on_done:(fun _ ->
          if Ltm.is_alive txn then Ltm.commit w.ltm txn ~on_done:(fun _ -> client2 base (n + 1))
          else client2 base (n + 1))
    end
  in
  client 0;
  client2 1000 0;
  client2 2000 0;
  Engine.run w.engine;
  Trace.history w.trace

let prop_s2pl_rigorous =
  QCheck.Test.make ~name:"S2PL histories are rigorous" ~count:25
    QCheck.(int_bound 10_000)
    (fun seed ->
      let h = run_random_workload ~config:Ltm_config.default ~seed ~n_txns:15 in
      Rigorous.is_rigorous (Hermes_history.Projection.ltm h site0))

let test_nonrigorous_ablation () =
  (* Releasing read locks early must eventually produce a non-rigorous
     history on some seed. *)
  let config = { Ltm_config.default with Ltm_config.rigorous = false } in
  let found = ref false in
  for seed = 0 to 30 do
    if not !found then begin
      let h = run_random_workload ~config ~seed ~n_txns:15 in
      if not (Rigorous.is_rigorous (Hermes_history.Projection.ltm h site0)) then found := true
    end
  done;
  Alcotest.(check bool) "ablation breaks rigorousness" true !found

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ltm"
    [
      ( "lock",
        [
          Alcotest.test_case "shared compatible" `Quick test_lock_shared_compatible;
          Alcotest.test_case "exclusive blocks" `Quick test_lock_exclusive_blocks;
          Alcotest.test_case "reacquire" `Quick test_lock_reacquire;
          Alcotest.test_case "upgrade sole holder" `Quick test_lock_upgrade_sole_holder;
          Alcotest.test_case "upgrade waits" `Quick test_lock_upgrade_waits;
          Alcotest.test_case "FIFO no overtaking" `Quick test_lock_fifo_no_overtaking;
          Alcotest.test_case "cancel waits" `Quick test_lock_cancel_waits;
          Alcotest.test_case "blockers" `Quick test_lock_blockers;
        ] );
      ( "decompose",
        [
          Alcotest.test_case "update of missing row" `Quick test_decompose_update_missing;
          Alcotest.test_case "range select" `Quick test_decompose_select_range;
          Alcotest.test_case "state dependence (H1)" `Quick test_decompose_state_dependence;
          Alcotest.test_case "update range" `Quick test_decompose_update_range;
          Alcotest.test_case "plan lock modes" `Quick test_decompose_plan_modes;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "exec + commit" `Quick test_exec_commit;
          Alcotest.test_case "exec update range" `Quick test_exec_update_range;
          Alcotest.test_case "abort rolls back" `Quick test_abort_rolls_back;
          Alcotest.test_case "unilateral abort + UAN" `Quick test_unilateral_abort_uan;
          Alcotest.test_case "conflicts serialize" `Quick test_lock_conflict_serializes;
          Alcotest.test_case "lock timeout" `Quick test_lock_timeout_aborts;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
          Alcotest.test_case "wait-die" `Quick test_wait_die;
          Alcotest.test_case "wound-wait" `Quick test_wound_wait;
        ] );
      ( "dlu",
        [
          Alcotest.test_case "denies local update" `Quick test_dlu_denies_local_update;
          Alcotest.test_case "allows local read" `Quick test_dlu_allows_local_read;
          Alcotest.test_case "allows global update" `Quick test_dlu_allows_global_update;
          Alcotest.test_case "block mode" `Quick test_dlu_block_mode;
          Alcotest.test_case "ignore mode" `Quick test_dlu_ignore_mode;
          Alcotest.test_case "refcount" `Quick test_bound_refcount;
        ] );
      ( "failure",
        [
          Alcotest.test_case "TW cap" `Quick test_injector_caps_aborts;
          Alcotest.test_case "site crash = collective abort" `Quick test_site_crash_collective_abort;
          Alcotest.test_case "locals spared" `Quick test_injector_spares_locals;
        ] );
      ( "rigorousness",
        [ q prop_s2pl_rigorous; Alcotest.test_case "non-rigorous ablation" `Quick test_nonrigorous_ablation ]
      );
    ]

(* Tests for the multicore execution engine: the lock-free mailbox, the
   conservative windowed runner, and the end-to-end equivalence of the
   sharded driver across domain counts.

   The determinism contract under test: the windowed engine produces the
   SAME result at any domain count (1, 2, 4, ...) — same merged history,
   same statistics, same outcome sets — because windows are a function of
   virtual time only and cross-shard drains are deterministically
   ordered. It is a *different* schedule from the legacy sequential
   engine; the legacy engine's byte-identity is pinned separately by the
   golden digests in test_protocol.ml (and re-asserted here for
   [domains = 1] dispatch). *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Mailbox = Hermes_sim.Mailbox
module Parallel = Hermes_sim.Parallel
module Driver = Hermes_workload.Driver
module Spec = Hermes_workload.Spec
module Stats = Hermes_workload.Stats
module Config = Hermes_core.Config
module Dtm = Hermes_core.Dtm
module Network = Hermes_net.Network
module Message = Hermes_net.Message
module Cgm = Hermes_baselines.Cgm
module History = Hermes_history.History
module Report = Hermes_history.Report
module Obs = Hermes_obs.Obs
module Tracer = Hermes_obs.Tracer
module Registry = Hermes_obs.Registry

(* ------------------------------------------------------------------ *)
(* Mailbox                                                             *)
(* ------------------------------------------------------------------ *)

let test_mailbox_drain_order () =
  let mb = Mailbox.create () in
  (* Push in scrambled order; drain must sort by (at, src_shard, src_seq). *)
  Mailbox.push mb ~at:30 ~src_shard:1 ~src_seq:0 "d";
  Mailbox.push mb ~at:10 ~src_shard:2 ~src_seq:1 "c";
  Mailbox.push mb ~at:10 ~src_shard:0 ~src_seq:5 "b";
  Mailbox.push mb ~at:10 ~src_shard:0 ~src_seq:2 "a";
  Alcotest.(check int) "length" 4 (Mailbox.length mb);
  let drained = List.map (fun e -> e.Mailbox.payload) (Mailbox.drain mb) in
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c"; "d" ] drained;
  Alcotest.(check bool) "empty after drain" true (Mailbox.is_empty mb)

let test_mailbox_concurrent_push () =
  let mb = Mailbox.create () in
  let per_domain = 1000 in
  let producers =
    List.init 4 (fun shard ->
        Domain.spawn (fun () ->
            for s = 0 to per_domain - 1 do
              Mailbox.push mb ~at:1 ~src_shard:shard ~src_seq:s (shard, s)
            done))
  in
  List.iter Domain.join producers;
  let drained = Mailbox.drain mb in
  Alcotest.(check int) "nothing lost" (4 * per_domain) (List.length drained);
  (* Deterministic order regardless of the race: shard-major, seq-minor. *)
  let expected = List.concat (List.init 4 (fun sh -> List.init per_domain (fun s -> (sh, s)))) in
  Alcotest.(check bool)
    "deterministic order" true
    (List.map (fun e -> e.Mailbox.payload) drained = expected)

(* ------------------------------------------------------------------ *)
(* Engine.next_at                                                      *)
(* ------------------------------------------------------------------ *)

let test_engine_next_at () =
  let e = Engine.create () in
  Alcotest.(check (option int)) "empty" None (Option.map Time.to_int (Engine.next_at e));
  Engine.schedule_unit e ~delay:50 (fun () -> ());
  let t = Engine.schedule e ~delay:10 (fun () -> ()) in
  Alcotest.(check (option int)) "earliest" (Some 10) (Option.map Time.to_int (Engine.next_at e));
  (* Cancelled timers still occupy the queue — next_at is a lower bound on
     the next *fired* event, which is all the window computation needs. *)
  Engine.cancel t;
  Alcotest.(check (option int)) "cancelled still pending" (Some 10)
    (Option.map Time.to_int (Engine.next_at e));
  Engine.run e;
  Alcotest.(check (option int)) "drained" None (Option.map Time.to_int (Engine.next_at e))

(* ------------------------------------------------------------------ *)
(* The conservative windowed runner on toy shards                      *)
(* ------------------------------------------------------------------ *)

(* A ping-pong pair: each shard, on receiving k, sends k-1 back with
   latency [lookahead]. Exercises cross-window message flow. *)
let run_pingpong ~domains =
  let lookahead = 100 in
  let n = 2 in
  let engines = Array.init n (fun _ -> Engine.create ()) in
  let mailboxes = Array.init n (fun _ -> Mailbox.create ()) in
  let seqs = Array.make n 0 in
  let log = Array.make n [] in
  let send ~from ~dst k =
    let at = Time.to_int (Time.add (Engine.now engines.(from)) lookahead) in
    let s = seqs.(from) in
    seqs.(from) <- s + 1;
    Mailbox.push mailboxes.(dst) ~at ~src_shard:from ~src_seq:s k
  in
  let receive shard k =
    log.(shard) <- (Time.to_int (Engine.now engines.(shard)), k) :: log.(shard);
    if k > 0 then send ~from:shard ~dst:(1 - shard) (k - 1)
  in
  let shards =
    Array.init n (fun i ->
        {
          Parallel.engine = engines.(i);
          drain =
            (fun () ->
              List.iter
                (fun e ->
                  let now = Engine.now engines.(i) in
                  Engine.schedule_unit engines.(i)
                    ~delay:(Time.to_int (Time.of_int e.Mailbox.at) - Time.to_int now)
                    (fun () -> receive i e.Mailbox.payload))
                (Mailbox.drain mailboxes.(i)));
          inbox_empty = (fun () -> Mailbox.is_empty mailboxes.(i));
        })
  in
  Engine.schedule_unit engines.(0) ~delay:5 (fun () -> receive 0 10);
  let stats = Parallel.run ~domains ~lookahead ~until:(Time.of_int 1_000_000) shards in
  (stats, Array.map List.rev log)

let test_parallel_pingpong () =
  let stats, logs = run_pingpong ~domains:2 in
  (* 11 receives total (k = 10 .. 0), alternating shards, 100 ticks apart. *)
  Alcotest.(check int) "shard 0 receives" 6 (List.length logs.(0));
  Alcotest.(check int) "shard 1 receives" 5 (List.length logs.(1));
  Alcotest.(check (list (pair int int)))
    "shard 0 log" [ (5, 10); (205, 8); (405, 6); (605, 4); (805, 2); (1005, 0) ]
    logs.(0);
  Alcotest.(check bool) "ran in windows" true (stats.Parallel.windows >= 11)

let test_parallel_domain_invariance () =
  let _, l1 = run_pingpong ~domains:1 in
  let _, l2 = run_pingpong ~domains:2 in
  Alcotest.(check bool) "domains 1 = domains 2" true (l1 = l2)

let test_parallel_worker_exception () =
  let engines = [| Engine.create (); Engine.create () |] in
  Engine.schedule_unit engines.(1) ~delay:10 (fun () -> failwith "boom");
  let shards =
    Array.map
      (fun e ->
        { Parallel.engine = e; drain = (fun () -> ()); inbox_empty = (fun () -> true) })
      engines
  in
  Alcotest.check_raises "re-raised on caller" (Failure "boom") (fun () ->
      ignore (Parallel.run ~domains:2 ~lookahead:100 ~until:(Time.of_int 1000) shards))

(* ------------------------------------------------------------------ *)
(* End-to-end: the sharded driver across domain counts                 *)
(* ------------------------------------------------------------------ *)

let windowed_setup =
  {
    Driver.default_setup with
    Driver.spec =
      Spec.make ~n_sites:4 ~n_global:60
        ~arrival:(Spec.Closed { mpl = 6; think_time_mean = Spec.think_time Spec.default })
        ~local_txn_cap:120 ();
    seed = 42;
  }

let outcome_sets r =
  let h = r.Driver.history in
  let globals = History.global_txns h in
  let committed, aborted =
    List.partition (fun txn -> History.is_globally_committed h txn) globals
  in
  (List.map Txn.show committed, List.map Txn.show aborted)

let test_windowed_domain_invariance () =
  let r1 = Driver.run_windowed ~domains:1 windowed_setup in
  let r2 = Driver.run_windowed ~domains:2 windowed_setup in
  let r4 = Driver.run_windowed ~domains:4 windowed_setup in
  let c1, a1 = outcome_sets r1 and c2, a2 = outcome_sets r2 and c4, a4 = outcome_sets r4 in
  Alcotest.(check (list string)) "committed gids 1=2" c1 c2;
  Alcotest.(check (list string)) "committed gids 1=4" c1 c4;
  Alcotest.(check (list string)) "aborted gids 1=2" a1 a2;
  Alcotest.(check (list string)) "aborted gids 1=4" a1 a4;
  Alcotest.(check int) "committed count" (Stats.committed r1.Driver.stats)
    (Stats.committed r2.Driver.stats);
  Alcotest.(check int) "attempts" (Stats.attempts r1.Driver.stats) (Stats.attempts r2.Driver.stats);
  Alcotest.(check int) "events 1=2" r1.Driver.events r2.Driver.events;
  Alcotest.(check int) "events 1=4" r1.Driver.events r4.Driver.events;
  Alcotest.(check int) "sim_ticks" r1.Driver.sim_ticks r2.Driver.sim_ticks;
  Alcotest.(check string)
    "identical merged history" (History.show r1.Driver.history) (History.show r2.Driver.history)

let test_windowed_clean_and_complete () =
  let r = Driver.run_windowed ~domains:2 windowed_setup in
  Alcotest.(check int) "no stuck transactions" 0 r.Driver.stuck;
  Alcotest.(check int) "quota completed" 60
    (Stats.committed r.Driver.stats + Stats.aborted_final r.Driver.stats);
  Alcotest.(check bool) "history clean" true (Report.ok (Report.analyze r.Driver.history))

let test_windowed_obs_merge () =
  let obs = Obs.create () in
  let r = Driver.run_windowed ~domains:2 { windowed_setup with Driver.obs = Some obs } in
  let reg = Obs.metrics obs in
  let committed_metric = Registry.Counter.value (Registry.counter reg "workload.committed") in
  Alcotest.(check int) "absorbed workload counters" (Stats.committed r.Driver.stats)
    committed_metric;
  Alcotest.(check bool) "trace events merged" true (Tracer.length (Obs.trace obs) > 0)

let prop_windowed_equivalence =
  QCheck.Test.make ~name:"windowed run is domain-count-invariant" ~count:8
    QCheck.(pair (int_range 1 1000) (int_range 2 4))
    (fun (seed, domains) ->
      let setup =
        {
          Driver.default_setup with
          Driver.spec =
            Spec.make ~n_sites:3 ~n_global:25
              ~arrival:(Spec.Closed { mpl = 4; think_time_mean = Spec.think_time Spec.default })
              ();
          seed;
        }
      in
      let base = Driver.run_windowed ~domains:1 setup in
      let par = Driver.run_windowed ~domains setup in
      outcome_sets base = outcome_sets par
      && Stats.committed base.Driver.stats = Stats.committed par.Driver.stats
      && base.Driver.events = par.Driver.events
      && base.Driver.sim_ticks = par.Driver.sim_ticks
      && Report.ok (Report.analyze par.Driver.history))

(* The [domains = 1] dispatch must stay on the legacy sequential engine:
   re-assert one of test_protocol.ml's golden digests through it. *)
let test_domains1_golden_digest () =
  let obs = Obs.create () in
  let r =
    Driver.run
      {
        Driver.default_setup with
        Driver.protocol = Driver.Two_pca Config.full;
        seed = 7;
        spec =
          Spec.make ~n_global:40
            ~arrival:(Spec.Closed { mpl = 4; think_time_mean = Spec.think_time Spec.default })
            ();
        domains = 1;
        obs = Some obs;
      }
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Tracer.to_json_lines (Obs.trace obs));
  Buffer.add_string buf (Registry.to_json (Obs.metrics obs));
  Buffer.add_string buf
    (Fmt.str "committed=%d events=%d ticks=%d stuck=%d" (Stats.committed r.Driver.stats)
       r.Driver.events r.Driver.sim_ticks r.Driver.stuck);
  Alcotest.(check string) "legacy digest unchanged" "99cdc870e03bfb9eb99a7b7479910efd"
    (Digest.to_hex (Digest.string (Buffer.contents buf)))

let test_windowed_rejects_cgm () =
  let setup =
    { windowed_setup with Driver.protocol = Driver.Cgm_baseline Cgm.default_config }
  in
  Alcotest.check_raises "CGM is single-domain"
    (Invalid_argument "Driver.run_windowed: the CGM baseline is single-domain only") (fun () ->
      ignore (Driver.run_windowed ~domains:2 setup))

let () =
  Alcotest.run "multicore"
    [
      ( "mailbox",
        [
          Alcotest.test_case "drain order" `Quick test_mailbox_drain_order;
          Alcotest.test_case "concurrent push" `Quick test_mailbox_concurrent_push;
        ] );
      ("engine", [ Alcotest.test_case "next_at" `Quick test_engine_next_at ]);
      ( "parallel",
        [
          Alcotest.test_case "pingpong windows" `Quick test_parallel_pingpong;
          Alcotest.test_case "domain invariance" `Quick test_parallel_domain_invariance;
          Alcotest.test_case "worker exception" `Quick test_parallel_worker_exception;
        ] );
      ( "driver",
        [
          Alcotest.test_case "domain invariance" `Quick test_windowed_domain_invariance;
          Alcotest.test_case "clean and complete" `Quick test_windowed_clean_and_complete;
          Alcotest.test_case "obs merge" `Quick test_windowed_obs_merge;
          QCheck_alcotest.to_alcotest prop_windowed_equivalence;
          Alcotest.test_case "domains=1 golden digest" `Quick test_domains1_golden_digest;
          Alcotest.test_case "rejects CGM" `Quick test_windowed_rejects_cgm;
        ] );
    ]

(* Tests for hermes.net: reliability, per-link FIFO, cross-link races. *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Message = Hermes_net.Message
module Network = Hermes_net.Network

let a = Site.of_int 0
let b = Site.of_int 1

let make ?(config = Network.default_config) ?(seed = 1) () =
  let engine = Engine.create () in
  let net = Network.create ~engine ~rng:(Rng.create ~seed) ~config () in
  (engine, net)

let test_delivery () =
  let engine, net = make () in
  let got = ref None in
  Network.register net (Message.Agent a) (fun m -> got := Some m);
  Network.send net ~src:(Message.Coordinator 1) ~dst:(Message.Agent a) ~gid:1 (Message.Begin { epoch = 0 });
  Engine.run engine;
  match !got with
  | Some { Message.payload = Message.Begin _; gid = 1; _ } -> ()
  | _ -> Alcotest.fail "message not delivered"

let test_per_link_fifo () =
  (* Heavy jitter, many messages on one link: arrival order = send order. *)
  let engine, net = make ~config:{ Network.default_config with base_delay = 100; jitter = 5_000 } () in
  let got = ref [] in
  Network.register net (Message.Agent a) (fun m -> got := m.Message.gid :: !got);
  for i = 1 to 50 do
    Network.send net ~src:(Message.Coordinator 7) ~dst:(Message.Agent a) ~gid:i (Message.Begin { epoch = 0 })
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "FIFO" (List.init 50 (fun i -> i + 1)) (List.rev !got)

let test_cross_link_races_happen () =
  (* Two senders to the same destination: with jitter, later sends can
     arrive earlier — the §5.3 COMMIT-overtakes-PREPARE race. *)
  let engine, net = make ~config:{ Network.default_config with base_delay = 100; jitter = 2_000 } ~seed:3 () in
  let got = ref [] in
  Network.register net (Message.Agent a) (fun m -> got := m.Message.gid :: !got);
  let overtaken = ref false in
  for i = 1 to 40 do
    Network.send net ~src:(Message.Coordinator 1) ~dst:(Message.Agent a) ~gid:(2 * i) (Message.Begin { epoch = 0 });
    Network.send net ~src:(Message.Coordinator 2) ~dst:(Message.Agent a) ~gid:((2 * i) + 1) (Message.Begin { epoch = 0 })
  done;
  Engine.run engine;
  (* If any odd gid (sent second in its pair) arrives before its even
     partner, a race happened. *)
  let arrival = List.rev !got in
  List.iteri
    (fun pos gid ->
      if gid mod 2 = 1 then
        let partner = gid - 1 in
        let partner_pos = Option.get (List.find_index (Int.equal partner) arrival) in
        if pos < partner_pos then overtaken := true)
    arrival;
  Alcotest.(check bool) "some cross-link overtaking" true !overtaken

let test_no_handler_fails () =
  let engine, net = make () in
  Network.send net ~src:(Message.Coordinator 1) ~dst:(Message.Agent b) ~gid:1 (Message.Begin { epoch = 0 });
  Alcotest.(check bool) "raises" true
    (try
       Engine.run engine;
       false
     with Failure _ -> true)

let test_counters () =
  let engine, net = make () in
  Network.register net (Message.Agent a) ignore;
  for _ = 1 to 5 do
    Network.send net ~src:(Message.Coordinator 1) ~dst:(Message.Agent a) ~gid:1 Message.Ready
  done;
  Alcotest.(check int) "sent" 5 (Network.sent net);
  Engine.run engine;
  Alcotest.(check int) "delivered" 5 (Network.delivered net)

let faults_config faults = { Network.default_config with faults }

let test_drop_all () =
  (* drop = 1.0: every send is a counted drop, the handler never runs. *)
  let engine, net = make ~config:(faults_config { Network.no_faults with drop = 1.0 }) () in
  let got = ref 0 in
  Network.register net (Message.Agent a) (fun _ -> incr got);
  for i = 1 to 7 do
    Network.send net ~src:(Message.Coordinator 1) ~dst:(Message.Agent a) ~gid:i (Message.Begin { epoch = 0 })
  done;
  Engine.run engine;
  Alcotest.(check int) "nothing delivered" 0 !got;
  Alcotest.(check int) "all dropped" 7 (Network.dropped net);
  Alcotest.(check int) "delivered counter" 0 (Network.delivered net)

let test_duplicate_all () =
  (* dup = 1.0: every message arrives exactly twice, in FIFO order. *)
  let engine, net = make ~config:(faults_config { Network.no_faults with dup = 1.0 }) () in
  let got = ref [] in
  Network.register net (Message.Agent a) (fun m -> got := m.Message.gid :: !got);
  for i = 1 to 5 do
    Network.send net ~src:(Message.Coordinator 1) ~dst:(Message.Agent a) ~gid:i (Message.Begin { epoch = 0 })
  done;
  Engine.run engine;
  Alcotest.(check int) "duplicated counter" 5 (Network.duplicated net);
  Alcotest.(check (list int)) "each delivered twice, in order"
    [ 1; 1; 2; 2; 3; 3; 4; 4; 5; 5 ]
    (List.rev !got)

let test_down_site_drops () =
  (* Deliveries to a down destination are counted drops, not failures —
     including messages already in flight when the site goes down. *)
  let engine, net = make () in
  let got = ref 0 in
  Network.register net (Message.Agent a) (fun _ -> incr got);
  Network.send net ~src:(Message.Coordinator 1) ~dst:(Message.Agent a) ~gid:1 Message.Commit;
  Network.mark_down net (Message.Agent a);
  Alcotest.(check bool) "lossy once a site is down" true (Network.lossy net);
  Network.send net ~src:(Message.Coordinator 1) ~dst:(Message.Agent a) ~gid:2 Message.Commit;
  Engine.run engine;
  Alcotest.(check int) "nothing delivered while down" 0 !got;
  Alcotest.(check int) "both counted drops" 2 (Network.dropped net);
  Network.mark_up net (Message.Agent a);
  Network.send net ~src:(Message.Coordinator 1) ~dst:(Message.Agent a) ~gid:3 Message.Commit;
  Engine.run engine;
  Alcotest.(check int) "delivered after reboot" 1 !got

let test_partition_window () =
  (* Sends inside the window are dropped (either direction); sends after
     it get through. *)
  let config =
    faults_config
      {
        Network.no_faults with
        partitions =
          [ { Network.between = (Network.Addr (Message.Agent a), Network.Any_addr); window = (0, 1_000) } ];
      }
  in
  let engine, net = make ~config () in
  let got = ref 0 in
  Network.register net (Message.Agent a) (fun _ -> incr got);
  Network.register net (Message.Agent b) (fun _ -> incr got);
  (* Inside the window, both directions across the cut. *)
  Network.send net ~src:(Message.Coordinator 1) ~dst:(Message.Agent a) ~gid:1 (Message.Begin { epoch = 0 });
  Network.send net ~src:(Message.Agent a) ~dst:(Message.Agent b) ~gid:2 (Message.Begin { epoch = 0 });
  (* Unrelated link: unaffected. *)
  Network.send net ~src:(Message.Coordinator 1) ~dst:(Message.Agent b) ~gid:3 (Message.Begin { epoch = 0 });
  (* After the window closes. *)
  Engine.schedule_unit engine ~delay:2_000 (fun () ->
      Network.send net ~src:(Message.Coordinator 1) ~dst:(Message.Agent a) ~gid:4 (Message.Begin { epoch = 0 }));
  Engine.run engine;
  Alcotest.(check int) "partition drops" 2 (Network.dropped net);
  Alcotest.(check int) "others delivered" 2 !got

(* Regression for the overtaking under-count: the old detector compared
   only the single most recent in-flight arrival, so one late message
   overtaking k earlier ones counted at most once. The counter must
   equal the inversion count of the delivery order w.r.t. send order. *)
let inversions order =
  let arr = Array.of_list order in
  let n = Array.length arr in
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if arr.(i) > arr.(j) then incr count
    done
  done;
  !count

let test_overtake_counts_all () =
  let module Obs = Hermes_obs.Obs in
  let module Registry = Hermes_obs.Registry in
  let engine = Engine.create () in
  let obs = Obs.create () in
  let net =
    Network.create ~engine ~rng:(Rng.create ~seed:11) ~obs
      ~config:{ Network.default_config with base_delay = 100; jitter = 4_000 }
      ()
  in
  let got = ref [] in
  Network.register net (Message.Agent a) (fun m -> got := m.Message.gid :: !got);
  (* Many senders, one destination: gid = send order. *)
  for i = 1 to 30 do
    Network.send net ~src:(Message.Coordinator i) ~dst:(Message.Agent a) ~gid:i (Message.Begin { epoch = 0 })
  done;
  Engine.run engine;
  let order = List.rev !got in
  let expected = inversions order in
  Alcotest.(check bool) "scenario actually races" true (expected > 1);
  Alcotest.(check int) "every overtaken message counted" expected
    (Registry.sum_counter (Obs.metrics obs) "net.overtakes")

let prop_fifo_always =
  QCheck.Test.make ~name:"per-link FIFO holds for any seed/jitter" ~count:50
    QCheck.(pair (int_bound 1000) (int_bound 3000))
    (fun (seed, jitter) ->
      let engine, net = make ~config:{ Network.default_config with base_delay = 10; jitter } ~seed () in
      let got = ref [] in
      Network.register net (Message.Agent a) (fun m -> got := m.Message.gid :: !got);
      for i = 1 to 20 do
        Network.send net ~src:(Message.Coordinator 1) ~dst:(Message.Agent a) ~gid:i (Message.Begin { epoch = 0 })
      done;
      Engine.run engine;
      List.rev !got = List.init 20 (fun i -> i + 1))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "net"
    [
      ( "network",
        [
          Alcotest.test_case "delivery" `Quick test_delivery;
          Alcotest.test_case "per-link FIFO" `Quick test_per_link_fifo;
          Alcotest.test_case "cross-link races" `Quick test_cross_link_races_happen;
          Alcotest.test_case "no handler" `Quick test_no_handler_fails;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "drop all" `Quick test_drop_all;
          Alcotest.test_case "duplicate all" `Quick test_duplicate_all;
          Alcotest.test_case "down site: counted drops" `Quick test_down_site_drops;
          Alcotest.test_case "partition window" `Quick test_partition_window;
          Alcotest.test_case "overtaking counts every overtaken message" `Quick test_overtake_counts_all;
          q prop_fifo_always;
        ] );
    ]

(* Tests for hermes.net: reliability, per-link FIFO, cross-link races. *)

open Hermes_kernel
module Engine = Hermes_sim.Engine
module Message = Hermes_net.Message
module Network = Hermes_net.Network

let a = Site.of_int 0
let b = Site.of_int 1

let make ?(config = Network.default_config) ?(seed = 1) () =
  let engine = Engine.create () in
  let net = Network.create ~engine ~rng:(Rng.create ~seed) ~config () in
  (engine, net)

let test_delivery () =
  let engine, net = make () in
  let got = ref None in
  Network.register net (Message.Agent a) (fun m -> got := Some m);
  Network.send net ~src:(Message.Coordinator 1) ~dst:(Message.Agent a) ~gid:1 Message.Begin;
  Engine.run engine;
  match !got with
  | Some { Message.payload = Message.Begin; gid = 1; _ } -> ()
  | _ -> Alcotest.fail "message not delivered"

let test_per_link_fifo () =
  (* Heavy jitter, many messages on one link: arrival order = send order. *)
  let engine, net = make ~config:{ Network.base_delay = 100; jitter = 5_000 } () in
  let got = ref [] in
  Network.register net (Message.Agent a) (fun m -> got := m.Message.gid :: !got);
  for i = 1 to 50 do
    Network.send net ~src:(Message.Coordinator 7) ~dst:(Message.Agent a) ~gid:i Message.Begin
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "FIFO" (List.init 50 (fun i -> i + 1)) (List.rev !got)

let test_cross_link_races_happen () =
  (* Two senders to the same destination: with jitter, later sends can
     arrive earlier — the §5.3 COMMIT-overtakes-PREPARE race. *)
  let engine, net = make ~config:{ Network.base_delay = 100; jitter = 2_000 } ~seed:3 () in
  let got = ref [] in
  Network.register net (Message.Agent a) (fun m -> got := m.Message.gid :: !got);
  let overtaken = ref false in
  for i = 1 to 40 do
    Network.send net ~src:(Message.Coordinator 1) ~dst:(Message.Agent a) ~gid:(2 * i) Message.Begin;
    Network.send net ~src:(Message.Coordinator 2) ~dst:(Message.Agent a) ~gid:((2 * i) + 1) Message.Begin
  done;
  Engine.run engine;
  (* If any odd gid (sent second in its pair) arrives before its even
     partner, a race happened. *)
  let arrival = List.rev !got in
  List.iteri
    (fun pos gid ->
      if gid mod 2 = 1 then
        let partner = gid - 1 in
        let partner_pos = Option.get (List.find_index (Int.equal partner) arrival) in
        if pos < partner_pos then overtaken := true)
    arrival;
  Alcotest.(check bool) "some cross-link overtaking" true !overtaken

let test_no_handler_fails () =
  let engine, net = make () in
  Network.send net ~src:(Message.Coordinator 1) ~dst:(Message.Agent b) ~gid:1 Message.Begin;
  Alcotest.(check bool) "raises" true
    (try
       Engine.run engine;
       false
     with Failure _ -> true)

let test_counters () =
  let engine, net = make () in
  Network.register net (Message.Agent a) ignore;
  for _ = 1 to 5 do
    Network.send net ~src:(Message.Coordinator 1) ~dst:(Message.Agent a) ~gid:1 Message.Ready
  done;
  Alcotest.(check int) "sent" 5 (Network.sent net);
  Engine.run engine;
  Alcotest.(check int) "delivered" 5 (Network.delivered net)

let prop_fifo_always =
  QCheck.Test.make ~name:"per-link FIFO holds for any seed/jitter" ~count:50
    QCheck.(pair (int_bound 1000) (int_bound 3000))
    (fun (seed, jitter) ->
      let engine, net = make ~config:{ Network.base_delay = 10; jitter } ~seed () in
      let got = ref [] in
      Network.register net (Message.Agent a) (fun m -> got := m.Message.gid :: !got);
      for i = 1 to 20 do
        Network.send net ~src:(Message.Coordinator 1) ~dst:(Message.Agent a) ~gid:i Message.Begin
      done;
      Engine.run engine;
      List.rev !got = List.init 20 (fun i -> i + 1))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "net"
    [
      ( "network",
        [
          Alcotest.test_case "delivery" `Quick test_delivery;
          Alcotest.test_case "per-link FIFO" `Quick test_per_link_fifo;
          Alcotest.test_case "cross-link races" `Quick test_cross_link_races_happen;
          Alcotest.test_case "no handler" `Quick test_no_handler_fails;
          Alcotest.test_case "counters" `Quick test_counters;
          q prop_fifo_always;
        ] );
    ]

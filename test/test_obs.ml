(* Tests for hermes.obs: histogram bucket arithmetic, counter/gauge
   semantics, registry merging and export determinism, the tracer, and
   end-to-end determinism of an instrumented driver run. *)

open Hermes_kernel
open Hermes_obs
module Driver = Hermes_workload.Driver
module Spec = Hermes_workload.Spec
module Failure = Hermes_ltm.Failure

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)
(* ------------------------------------------------------------------ *)

let test_bucket_boundaries () =
  (* Bucket 0 holds the value 0; bucket i >= 1 holds [2^(i-1), 2^i). *)
  Alcotest.(check int) "0 -> bucket 0" 0 (Histogram.bucket_index 0);
  Alcotest.(check int) "1 -> bucket 1" 1 (Histogram.bucket_index 1);
  Alcotest.(check int) "2 -> bucket 2" 2 (Histogram.bucket_index 2);
  Alcotest.(check int) "3 -> bucket 2" 2 (Histogram.bucket_index 3);
  Alcotest.(check int) "4 -> bucket 3" 3 (Histogram.bucket_index 4);
  Alcotest.(check int) "7 -> bucket 3" 3 (Histogram.bucket_index 7);
  Alcotest.(check int) "8 -> bucket 4" 4 (Histogram.bucket_index 8);
  Alcotest.(check (pair int int)) "bounds of 0" (0, 0) (Histogram.bucket_bounds 0);
  Alcotest.(check (pair int int)) "bounds of 1" (1, 1) (Histogram.bucket_bounds 1);
  Alcotest.(check (pair int int)) "bounds of 3" (4, 7) (Histogram.bucket_bounds 3);
  (* Boundaries must agree: every value maps into its own bucket's range. *)
  List.iter
    (fun v ->
      let lo, hi = Histogram.bucket_bounds (Histogram.bucket_index v) in
      if v < lo || v > hi then Alcotest.failf "value %d outside its bucket [%d, %d]" v lo hi)
    [ 0; 1; 2; 3; 4; 5; 7; 8; 15; 16; 100; 1_000; 1_000_000; max_int ]

let test_histogram_stats () =
  let h = Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Histogram.count h);
  Alcotest.(check int) "empty percentile" 0 (Histogram.percentile h 95);
  for v = 10 to 100 do
    Histogram.record h v
  done;
  Alcotest.(check int) "count" 91 (Histogram.count h);
  Alcotest.(check int) "sum exact" 5005 (Histogram.sum h);
  Alcotest.(check int) "min exact" 10 (Histogram.min_value h);
  Alcotest.(check int) "max exact" 100 (Histogram.max_value h);
  (* The 50th-percentile sample (55) lies in bucket [32, 63]: the reported
     percentile is that bucket's upper bound. *)
  Alcotest.(check int) "p50 = bucket upper bound" 63 (Histogram.percentile h 50);
  (* p100 clamps to the exact maximum; p0 is the first sample's bucket
     upper bound (10 lies in [8, 15]). *)
  Alcotest.(check int) "p100 = max" 100 (Histogram.percentile h 100);
  Alcotest.(check int) "p0 = first bucket's bound" 15 (Histogram.percentile h 0);
  Histogram.record h (-5);
  Alcotest.(check int) "negative counts as 0" 0 (Histogram.min_value h)

let test_histogram_merge_associative () =
  let of_list vs =
    let h = Histogram.create () in
    List.iter (Histogram.record h) vs;
    h
  in
  let a = of_list [ 1; 5; 9 ] and b = of_list [ 0; 100; 3 ] and c = of_list [ 42 ] in
  let l = Histogram.merge (Histogram.merge a b) c and r = Histogram.merge a (Histogram.merge b c) in
  Alcotest.(check bool) "associative" true (Histogram.equal l r);
  Alcotest.(check bool) "commutative" true (Histogram.equal (Histogram.merge a b) (Histogram.merge b a));
  Alcotest.(check int) "merge count" 7 (Histogram.count l);
  Alcotest.(check int) "merge sum" 160 (Histogram.sum l);
  Alcotest.(check int) "merge min" 0 (Histogram.min_value l);
  Alcotest.(check int) "merge max" 100 (Histogram.max_value l);
  (* absorb = in-place merge *)
  let d = Histogram.copy a in
  Histogram.absorb d b;
  Alcotest.(check bool) "absorb = merge" true (Histogram.equal d (Histogram.merge a b))

let test_histogram_json_round_trip () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 0; 1; 7; 63; 64; 12_345 ];
  let h' = Histogram.of_json (Histogram.to_json h) in
  Alcotest.(check bool) "round trip" true (Histogram.equal h h');
  Alcotest.(check int) "min preserved" (Histogram.min_value h) (Histogram.min_value h');
  Alcotest.(check int) "max preserved" (Histogram.max_value h) (Histogram.max_value h')

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let test_counter_gauge () =
  let reg = Registry.create () in
  let c = Registry.counter reg "c" in
  Registry.Counter.incr c;
  Registry.Counter.add c 41;
  Alcotest.(check int) "counter" 42 (Registry.Counter.value c);
  Alcotest.(check bool) "same handle" true (Registry.counter reg "c" == c);
  let g = Registry.gauge reg "g" in
  Registry.Gauge.set g 10;
  Registry.Gauge.set g 3;
  Alcotest.(check int) "gauge last" 3 (Registry.Gauge.value g);
  Alcotest.(check int) "gauge high water" 10 (Registry.Gauge.high_water g);
  (* (name, site) keys one metric of one kind. *)
  Alcotest.check_raises "kind clash" (Invalid_argument "Obs.Registry: \"c\" is a counter, not a gauge")
    (fun () -> ignore (Registry.gauge reg "c"))

let test_registry_sites () =
  let reg = Registry.create () in
  let s0 = Site.of_int 0 and s1 = Site.of_int 1 in
  Registry.Counter.add (Registry.counter reg ~site:s0 "x") 2;
  Registry.Counter.add (Registry.counter reg ~site:s1 "x") 3;
  Registry.Counter.add (Registry.counter reg "x") 5;
  Alcotest.(check int) "sum over sites" 10 (Registry.sum_counter reg "x");
  Histogram.record (Registry.histogram reg ~site:s0 "h") 4;
  Histogram.record (Registry.histogram reg ~site:s1 "h") 100;
  let totals = Registry.histogram_totals reg "h" in
  Alcotest.(check int) "totals count" 2 (Histogram.count totals);
  Alcotest.(check int) "totals max" 100 (Histogram.max_value totals);
  (* Export order: name, then site with the global instance first. *)
  let names = List.map (fun r -> (r.Registry.name, r.Registry.site)) (Registry.rows reg) in
  Alcotest.(check bool) "sorted deterministically" true
    (names = [ ("h", Some 0); ("h", Some 1); ("x", None); ("x", Some 0); ("x", Some 1) ])

let test_registry_merge_and_json () =
  let mk adds =
    let reg = Registry.create () in
    List.iter (fun (n, v) -> Registry.Counter.add (Registry.counter reg n) v) adds;
    Histogram.record (Registry.histogram reg "lat") (List.length adds);
    reg
  in
  let a = mk [ ("n", 1); ("m", 2) ] and b = mk [ ("n", 10) ] and c = mk [ ("k", 7) ] in
  let l = Registry.merge (Registry.merge a b) c and r = Registry.merge a (Registry.merge b c) in
  Alcotest.(check string) "merge associative (by export)" (Registry.to_json l) (Registry.to_json r);
  Alcotest.(check int) "counters added" 11 (Registry.sum_counter l "n");
  let round = Registry.of_json (Registry.to_json l) in
  Alcotest.(check string) "json round trip" (Registry.to_json l) (Registry.to_json round);
  Alcotest.(check bool) "csv has every row" true
    (List.length (String.split_on_char '\n' (Registry.to_csv l)) >= List.length (Registry.rows l))

(* ------------------------------------------------------------------ *)
(* Tracer                                                              *)
(* ------------------------------------------------------------------ *)

let test_tracer () =
  let tr = Tracer.create () in
  let site = Site.of_int 0 in
  Tracer.emit tr ~at:(Time.of_int 5) (Tracer.Alive_check { site; gid = 1; alive = true });
  Tracer.emit tr ~at:(Time.of_int 9)
    (Tracer.Prepare_certification
       { site; gid = 1; sn = Sn.make ~ts:(Time.of_int 9) ~site ~seq:0; verdict = Tracer.Ready });
  Alcotest.(check int) "two events" 2 (Tracer.length tr);
  let lines = String.split_on_char '\n' (String.trim (Tracer.to_json_lines tr)) in
  Alcotest.(check int) "one json line per event" 2 (List.length lines);
  (* Obs.emit is lazy: with no context the thunk must not run. *)
  Obs.emit None ~at:(Time.of_int 0) (fun () -> Alcotest.fail "thunk forced without obs")

(* ------------------------------------------------------------------ *)
(* End to end: instrumented runs are deterministic                     *)
(* ------------------------------------------------------------------ *)

let instrumented_run () =
  let obs = Obs.create () in
  let setup =
    {
      Driver.default_setup with
      Driver.failure = Failure.prepared_rate 0.15;
      seed = 21;
      spec = Spec.make ~n_global:25 ~key_dist:(Spec.Zipf { theta = 0.9 }) ();
      obs = Some obs;
    }
  in
  let r = Driver.run setup in
  (r, obs)

let test_instrumented_run_deterministic () =
  let r1, o1 = instrumented_run () and r2, o2 = instrumented_run () in
  Alcotest.(check string) "byte-identical metrics dumps" (Registry.to_json (Obs.metrics o1))
    (Registry.to_json (Obs.metrics o2));
  Alcotest.(check string) "byte-identical traces"
    (Tracer.to_json_lines (Obs.trace o1))
    (Tracer.to_json_lines (Obs.trace o2));
  ignore r1;
  ignore r2

let test_instrumented_run_consistent () =
  let r, obs = instrumented_run () in
  let reg = Obs.metrics obs in
  (* The registry's view of the run must agree with the driver's. *)
  Alcotest.(check int) "committed" (Hermes_workload.Stats.committed r.Driver.stats)
    (Registry.sum_counter reg "workload.committed");
  Alcotest.(check int) "ltm commits cover agents"
    (Registry.sum_counter reg "agent.local_commits" + Registry.sum_counter reg "workload.local_committed")
    (Registry.sum_counter reg "ltm.committed");
  Alcotest.(check bool) "events counted" true (Registry.sum_counter reg "sim.events" > 0);
  Alcotest.(check bool) "latencies collected" true
    (Histogram.count (Registry.histogram_totals reg "workload.commit_latency")
    = Hermes_workload.Stats.committed r.Driver.stats);
  Alcotest.(check bool) "trace nonempty" true (Tracer.length (Obs.trace obs) > 0)

let test_uninstrumented_run_unchanged () =
  (* Threading obs through a run must not change the simulation itself. *)
  let base, _ = instrumented_run () in
  let plain =
    Driver.run
      {
        Driver.default_setup with
        Driver.failure = Failure.prepared_rate 0.15;
        seed = 21;
        spec = Spec.make ~n_global:25 ~key_dist:(Spec.Zipf { theta = 0.9 }) ();
      }
  in
  Alcotest.(check int) "same commits" (Hermes_workload.Stats.committed plain.Driver.stats)
    (Hermes_workload.Stats.committed base.Driver.stats);
  Alcotest.(check int) "same events" plain.Driver.events base.Driver.events;
  Alcotest.(check int) "same sim time" plain.Driver.sim_ticks base.Driver.sim_ticks

let () =
  Alcotest.run "obs"
    [
      ( "histogram",
        [
          Alcotest.test_case "bucket boundaries" `Quick test_bucket_boundaries;
          Alcotest.test_case "stats" `Quick test_histogram_stats;
          Alcotest.test_case "merge associative" `Quick test_histogram_merge_associative;
          Alcotest.test_case "json round trip" `Quick test_histogram_json_round_trip;
        ] );
      ( "registry",
        [
          Alcotest.test_case "counter and gauge" `Quick test_counter_gauge;
          Alcotest.test_case "per-site series" `Quick test_registry_sites;
          Alcotest.test_case "merge and json" `Quick test_registry_merge_and_json;
        ] );
      ("tracer", [ Alcotest.test_case "emission and dumps" `Quick test_tracer ]);
      ( "end to end",
        [
          Alcotest.test_case "instrumented runs deterministic" `Quick test_instrumented_run_deterministic;
          Alcotest.test_case "registry agrees with driver" `Quick test_instrumented_run_consistent;
          Alcotest.test_case "instrumentation is inert" `Quick test_uninstrumented_run_unchanged;
        ] );
    ]

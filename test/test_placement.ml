(* The placement layer: epoch-versioned shard maps and their transition
   invariants (I6(a): total, disjoint ownership), plus the routing
   contract between [Dtm.locate] and the strided gid allocation. *)

open Hermes_kernel
module Shard_map = Hermes_placement.Shard_map
module Dtm = Hermes_core.Dtm
module Message = Hermes_net.Message

(* ------------------------------------------------------------------ *)
(* unit: static map shape                                              *)
(* ------------------------------------------------------------------ *)

let test_static_map () =
  let m = Shard_map.static ~n_sites:3 () in
  Alcotest.(check int) "epoch 0" 0 (Shard_map.epoch m);
  Alcotest.(check int) "one shard per site" 3 (Shard_map.n_shards m);
  for shard = 0 to 2 do
    Alcotest.(check int) "identity ownership" shard
      (Site.to_int (Shard_map.owner m ~shard))
  done;
  let m = Shard_map.static ~n_shards:8 ~n_sites:3 () in
  Alcotest.(check int) "8 shards" 8 (Shard_map.n_shards m);
  for shard = 0 to 7 do
    Alcotest.(check int) "round-robin ownership" (shard mod 3)
      (Site.to_int (Shard_map.owner m ~shard))
  done;
  Alcotest.(check int) "resolve follows shard_of_key" (13 mod 8 mod 3)
    (Site.to_int (Shard_map.resolve m ~key:13))

let test_move_epoch () =
  let m0 = Shard_map.static ~n_sites:4 () in
  let m1 = Shard_map.move m0 ~shard:2 ~to_:(Site.of_int 0) in
  Alcotest.(check int) "epoch bumped" 1 (Shard_map.epoch m1);
  Alcotest.(check int) "shard moved" 0 (Site.to_int (Shard_map.owner m1 ~shard:2));
  (* the installed map is a pure value: the old epoch still answers *)
  Alcotest.(check int) "old map untouched" 2 (Site.to_int (Shard_map.owner m0 ~shard:2));
  Alcotest.(check (list int)) "gainer's shards" [ 0; 2 ] (Shard_map.shards_of m1 ~site:(Site.of_int 0));
  Alcotest.(check (list int)) "loser's shards" [] (Shard_map.shards_of m1 ~site:(Site.of_int 2))

(* ------------------------------------------------------------------ *)
(* property: every transition preserves total, disjoint ownership      *)
(* ------------------------------------------------------------------ *)

(* A random walk over the transition space: moves, joins, and leaves in
   a data-driven sequence, checking I6(a) after every step. *)
type step = Move of int * int | Add of int | Remove of int

let gen_walk =
  QCheck.Gen.(
    let* n_sites = int_range 1 5 in
    let* n_shards = int_range 1 12 in
    let* steps =
      list_size (int_range 0 12)
        (oneof
           [
             (let* shard = int_range 0 1000 in
              let* site = int_range 0 1000 in
              return (Move (shard, site)));
             (let* site = int_range 0 12 in
              return (Add site));
             (let* site = int_range 0 1000 in
              return (Remove site));
           ])
    in
    return (n_sites, n_shards, steps))

let pp_step = function
  | Move (shard, site) -> Printf.sprintf "Move (%d, %d)" shard site
  | Add site -> Printf.sprintf "Add %d" site
  | Remove site -> Printf.sprintf "Remove %d" site

let arb_walk =
  QCheck.make gen_walk ~print:(fun (n_sites, n_shards, steps) ->
      Printf.sprintf "sites=%d shards=%d [%s]" n_sites n_shards
        (String.concat "; " (List.map pp_step steps)))

(* Total and disjoint: every shard has exactly one owner, and the owner
   is a serving site. [shards_of] over the serving sites partitions the
   shard space. *)
let coverage_ok m =
  let n = Shard_map.n_shards m in
  let sites = Shard_map.sites m in
  let owned = List.concat_map (fun site -> Shard_map.shards_of m ~site) sites in
  List.length owned = n
  && List.sort_uniq compare owned = List.init n Fun.id
  && List.for_all (fun shard -> List.mem (Shard_map.owner m ~shard) sites) (List.init n Fun.id)

let prop_transitions_preserve_coverage =
  QCheck.Test.make ~name:"shard-map transitions keep ownership total and disjoint" ~count:300
    arb_walk (fun (n_sites, n_shards, steps) ->
      let apply m = function
        | Move (shard, site) ->
            let sites = Shard_map.sites m in
            let shard = shard mod Shard_map.n_shards m in
            let to_ = List.nth sites (site mod List.length sites) in
            Shard_map.move m ~shard ~to_
        | Add site ->
            let s = Site.of_int site in
            if List.mem s (Shard_map.sites m) then m else Shard_map.add_site m ~site:s
        | Remove site ->
            let sites = Shard_map.sites m in
            if List.length sites <= 1 then m
            else Shard_map.remove_site m ~site:(List.nth sites (site mod List.length sites))
      in
      let final, epochs_ok =
        List.fold_left
          (fun (m, ok) step ->
            let m' = apply m step in
            let bumped = m' == m || Shard_map.epoch m' = Shard_map.epoch m + 1 in
            if not (coverage_ok m') then QCheck.Test.fail_reportf "coverage broken after %s" (pp_step step);
            (m', ok && bumped))
          (Shard_map.static ~n_shards ~n_sites (), true)
          steps
      in
      coverage_ok final && epochs_ok)

(* [resolve] always lands on a serving site, for any key (negative too:
   keys are hashed with a non-negative mod). *)
let prop_resolve_serving =
  QCheck.Test.make ~name:"resolve lands on a serving site for any key" ~count:300
    QCheck.(pair arb_walk (list QCheck.int))
    (fun ((n_sites, n_shards, steps), keys) ->
      let apply m = function
        | Move (shard, site) ->
            let sites = Shard_map.sites m in
            Shard_map.move m
              ~shard:(shard mod Shard_map.n_shards m)
              ~to_:(List.nth sites (site mod List.length sites))
        | Add site ->
            let s = Site.of_int site in
            if List.mem s (Shard_map.sites m) then m else Shard_map.add_site m ~site:s
        | Remove site ->
            let sites = Shard_map.sites m in
            if List.length sites <= 1 then m
            else Shard_map.remove_site m ~site:(List.nth sites (site mod List.length sites))
      in
      let m = List.fold_left apply (Shard_map.static ~n_shards ~n_sites ()) steps in
      List.for_all (fun key -> List.mem (Shard_map.resolve m ~key) (Shard_map.sites m)) keys)

(* ------------------------------------------------------------------ *)
(* property: Dtm.locate inverts the strided gid allocation             *)
(* ------------------------------------------------------------------ *)

(* Site [s] allocates gids [s + 1, s + 1 + n, s + 1 + 2n, ...]; [locate]
   must send coordinator traffic for such a gid back to [s]. *)
let prop_locate_strided =
  QCheck.Test.make ~name:"Dtm.locate inverts strided gid allocation" ~count:500
    QCheck.(triple (int_range 1 16) (int_bound 15) (int_bound 1000))
    (fun (n_sites, site, k) ->
      let site = site mod n_sites in
      let gid = site + 1 + (k * n_sites) in
      Dtm.locate ~n_sites (Message.Coordinator gid) = site
      && Dtm.locate ~n_sites (Message.Agent (Site.of_int site)) = site)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "placement"
    [
      ( "shard_map",
        [
          Alcotest.test_case "static map" `Quick test_static_map;
          Alcotest.test_case "move bumps epoch, pure value" `Quick test_move_epoch;
          q prop_transitions_preserve_coverage;
          q prop_resolve_serving;
        ] );
      ("routing", [ q prop_locate_strided ]);
    ]

(* Tests for hermes.protocol: the pure 2PC machines, the bounded model
   checker, and the byte-identity of the adapter-driven stack with the
   historical imperative implementation.

   The golden digests below were captured from the tree immediately
   BEFORE the machines were extracted (the last all-imperative
   revision): trace JSON + metrics registry JSON + headline counters of
   fixed-seed runs. The refactored stack must reproduce them bit for
   bit — same trace, same metrics, same RNG draws. *)

open Hermes_kernel
module A = Hermes_protocol.Agent_sm
module Csm = Hermes_protocol.Coordinator_sm
module T = Hermes_protocol.Types
module Alive_table = Hermes_protocol.Alive_table
module Explore = Hermes_protocol.Explore
module Config = Hermes_core.Config
module Dtm = Hermes_core.Dtm
module Coordinator = Hermes_core.Coordinator
module Program = Hermes_core.Program
module Engine = Hermes_sim.Engine
module Trace = Hermes_ltm.Trace
module Network = Hermes_net.Network
module Driver = Hermes_workload.Driver
module Spec = Hermes_workload.Spec
module Stats = Hermes_workload.Stats
module Obs = Hermes_obs.Obs
module Tracer = Hermes_obs.Tracer
module Registry = Hermes_obs.Registry
module Experiment = Hermes_harness.Experiment
module Table_fmt = Hermes_harness.Table_fmt

(* ------------------------------------------------------------------ *)
(* Golden byte-identity with the pre-refactor implementation            *)
(* ------------------------------------------------------------------ *)

let digest s = Digest.to_hex (Digest.string s)

let run_digest setup =
  let obs = Obs.create () in
  let r = Driver.run { setup with Driver.obs = Some obs } in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Tracer.to_json_lines (Obs.trace obs));
  Buffer.add_string buf (Registry.to_json (Obs.metrics obs));
  Buffer.add_string buf
    (Fmt.str "committed=%d events=%d ticks=%d stuck=%d" (Stats.committed r.Driver.stats)
       r.Driver.events r.Driver.sim_ticks r.Driver.stuck);
  digest (Buffer.contents buf)

let check_golden name expected actual = Alcotest.(check string) name expected actual

let test_golden_e1 () =
  check_golden "e1 table" "c071b67bdf460dfa42edac7f9d62961c"
    (digest (Table_fmt.to_string (Experiment.e1_global_view_distortion ())))

let test_golden_e5 () =
  check_golden "e5 run" "99cdc870e03bfb9eb99a7b7479910efd"
    (run_digest
       {
         Driver.default_setup with
         Driver.protocol = Driver.Two_pca Config.full;
         seed = 7;
         spec = Spec.make ~n_global:40 ~arrival:(Spec.Closed { mpl = 4; think_time_mean = Spec.think_time Spec.default }) ();
       })

let test_golden_e5_ticket () =
  check_golden "e5 ticket run" "bf850c1359486b1e9dc10ab040527ebf"
    (run_digest
       {
         Driver.default_setup with
         Driver.protocol = Driver.Two_pca Config.ticket;
         seed = 5;
         spec = Spec.make ~n_global:30 ~arrival:(Spec.Closed { mpl = 4; think_time_mean = Spec.think_time Spec.default }) ();
       })

let test_golden_e13 () =
  check_golden "e13 faulty run" "149d901c1c015b6c6f7c212c38701d62"
    (run_digest
       {
         Driver.default_setup with
         Driver.protocol = Driver.Two_pca Config.full;
         seed = 11;
         spec = Spec.make ~n_global:30 ~arrival:(Spec.Closed { mpl = 4; think_time_mean = Spec.think_time Spec.default }) ();
         net =
           {
             Network.default_config with
             Network.faults = { Network.no_faults with Network.drop = 0.05; dup = 0.05 };
           };
         crash_schedule = [ (400_000, 0); (900_000, 1) ];
         reboot_delay = 150_000;
       })

let test_golden_e13_multi_interval () =
  check_golden "e13 multi-interval run" "361cdd24e0fa8a274dd7c59928039fee"
    (run_digest
       {
         Driver.default_setup with
         Driver.protocol = Driver.Two_pca Config.multi_interval;
         seed = 3;
         spec = Spec.make ~n_global:25 ~arrival:(Spec.Closed { mpl = 3; think_time_mean = Spec.think_time Spec.default }) ();
         net =
           {
             Network.default_config with
             Network.faults = { Network.no_faults with Network.dup = 0.1 };
           };
       })

(* ------------------------------------------------------------------ *)
(* Unit-test scaffolding for driving the machines directly              *)
(* ------------------------------------------------------------------ *)

let cfg = { Config.full with Config.bind_data = false }
let site i = Site.of_int i
let a = site 0
let b = site 1
let coord = Wire.Coordinator 1
let cmd = Command.Select { table = "X"; keys = [ 0 ] }
let mk_sn ?(ts = 0) seq = Sn.make ~ts:(Time.of_int ts) ~site:a ~seq
let v ?(alive = true) ?(last = 0) () = { A.alive; last_op_done = Time.of_int last }

let env ?(now = 0) ?(views = []) ?max_sn ?(inquiry = false) ?(epoch = 0) () =
  { A.now = Time.of_int now; views; max_committed_sn = max_sn; inquiry; epoch }

let no_log =
  { A.known = false; prepared = false; committed = false; locally_committed = false;
    rolled_back = false; sn = None }

let deliver ?(cfg = cfg) ?(env = env ()) ?(log = no_log) ?(src = coord) st ~gid payload =
  A.step cfg st (A.Deliver { env; src; gid; payload; log })

(* Effect-list probes. *)
let sends effs =
  List.filter_map (function T.Send { payload; _ } -> Some payload | _ -> None) effs

let has_send effs payload = List.mem payload (sends effs)
let has_arm effs timer = List.exists (function T.Arm_timer { timer = t; _ } -> t = timer | _ -> false) effs
let has_cancel effs timer = List.exists (function T.Cancel_timer t -> t = timer | _ -> false) effs
let has_log effs r = List.exists (function T.Force_log x -> x = r | _ -> false) effs
let has_call effs c = List.exists (function T.Ltm_call x -> x = c | _ -> false) effs

let verdict_of effs =
  List.find_map
    (function T.Emit (A.Ev_prepare_certification { verdict; _ }) -> Some verdict | _ -> None)
    effs

(* Run one subtransaction from BEGIN to the READY vote. *)
let prepared ?(cfg = cfg) ?(gid = 1) ?(now = 0) ?(views = []) ?max_sn ~sn st =
  let st, _ = deliver ~cfg st ~gid (Wire.Begin { epoch = 0 }) in
  let st, _ = deliver ~cfg st ~gid (Wire.Exec { step = 0; cmd; epoch = 0 }) in
  let st, _ =
    A.step cfg st
      (A.Exec_done
         { env = env (); gid; inc = 0; purpose = A.Reply 0; result = A.Done (Command.Count 1) })
  in
  let views = if List.mem_assoc gid views then views else (gid, v ~last:now ()) :: views in
  deliver ~cfg ~env:(env ~now ~views ?max_sn ()) st ~gid (Wire.Prepare sn)

(* ------------------------------------------------------------------ *)
(* Agent machine: Appendix B (extended prepare certification)           *)
(* ------------------------------------------------------------------ *)

let test_prepare_ready () =
  let sn = mk_sn 0 in
  let st, effs = prepared ~sn (A.init ~site:a) in
  Alcotest.(check bool) "votes READY" true (has_send effs Wire.Ready);
  Alcotest.(check bool) "verdict V_ready" true (verdict_of effs = Some A.V_ready);
  Alcotest.(check bool) "prepare record forced" true (has_log effs (A.R_prepare { gid = 1; sn }));
  Alcotest.(check bool) "held open" true (has_call effs (A.L_hold_open { gid = 1 }));
  Alcotest.(check bool) "alive timer armed" true (has_arm effs (A.T_alive 1));
  Alcotest.(check int) "table has the entry" 1 (A.n_prepared st)

let test_prepare_extension_refused () =
  (* §5.3: a bigger-SN subtransaction already committed here. *)
  let st, effs = prepared ~sn:(mk_sn 1) ~max_sn:(mk_sn 5) (A.init ~site:a) in
  Alcotest.(check bool) "refuses" true (has_send effs (Wire.Refuse Wire.Extension_refused));
  (match verdict_of effs with
  | Some (A.V_refused_extension { committed_sn }) ->
      Alcotest.(check bool) "witness is the committed SN" true (Sn.equal committed_sn (mk_sn 5))
  | _ -> Alcotest.fail "expected V_refused_extension");
  Alcotest.(check bool) "local abort" true (has_call effs (A.L_abort { gid = 1 }));
  Alcotest.(check int) "no table entry" 0 (A.n_prepared st)

let test_prepare_interval_refused () =
  (* §4.2: the candidate's alive interval [5,5] misses the prepared
     entry's [0,0]; the entry's txn is no longer alive, so the
     refresh-on-certify pass cannot save it. *)
  let st, _ = prepared ~gid:1 ~sn:(mk_sn 0) (A.init ~site:a) in
  let views = [ (1, v ~alive:false ()); (2, v ~last:5 ()) ] in
  let _, effs = prepared ~gid:2 ~sn:(mk_sn 1) ~now:5 ~views st in
  Alcotest.(check bool) "refuses" true (has_send effs (Wire.Refuse Wire.Interval_refused));
  match verdict_of effs with
  | Some (A.V_refused_interval { conflicting_gid; _ }) ->
      Alcotest.(check int) "conflicting entry" 1 conflicting_gid
  | _ -> Alcotest.fail "expected V_refused_interval"

let test_prepare_refresh_saves_alive_neighbour () =
  (* Same geometry, but the neighbour is still alive: refresh-on-certify
     extends its interval to now and the intersection succeeds. *)
  let st, _ = prepared ~gid:1 ~sn:(mk_sn 0) (A.init ~site:a) in
  let views = [ (1, v ()); (2, v ~last:5 ()) ] in
  let _, effs = prepared ~gid:2 ~sn:(mk_sn 1) ~now:5 ~views st in
  Alcotest.(check bool) "votes READY" true (has_send effs Wire.Ready)

let test_prepare_dead_refused () =
  (* CI(2): a unilaterally aborted subtransaction is never prepared. *)
  let views = [ (1, v ~alive:false ()) ] in
  let _, effs = prepared ~gid:1 ~sn:(mk_sn 0) ~views (A.init ~site:a) in
  Alcotest.(check bool) "refuses" true (has_send effs (Wire.Refuse Wire.Dead_refused));
  Alcotest.(check bool) "verdict V_refused_dead" true (verdict_of effs = Some A.V_refused_dead)

let test_prepare_duplicate_revotes () =
  let st, _ = prepared ~sn:(mk_sn 0) (A.init ~site:a) in
  let _, effs = deliver st ~gid:1 (Wire.Prepare (mk_sn 0)) in
  Alcotest.(check bool) "repeats READY" true (has_send effs Wire.Ready);
  Alcotest.(check bool) "no second prepare record" true
    (not (has_log effs (A.R_prepare { gid = 1; sn = mk_sn 0 })))

(* ------------------------------------------------------------------ *)
(* Agent machine: Appendix A (alive check) and resubmission             *)
(* ------------------------------------------------------------------ *)

let test_alive_check_extends_interval () =
  let st, _ = prepared ~sn:(mk_sn 0) (A.init ~site:a) in
  let st, effs = A.step cfg st (A.Alive_fired { env = env ~now:7 ~views:[ (1, v ()) ] (); gid = 1 }) in
  Alcotest.(check bool) "re-arms" true (has_arm effs (A.T_alive 1));
  (match Alive_table.find st.A.table ~gid:1 with
  | Some e ->
      Alcotest.(check int) "interval extended to now" 7
        (Time.to_int (Interval.hi (Alive_table.current_interval e)))
  | None -> Alcotest.fail "entry vanished");
  match List.find_map (function T.Emit (A.Ev_alive_check { alive; _ }) -> Some alive | _ -> None) effs with
  | Some alive -> Alcotest.(check bool) "reported alive" true alive
  | None -> Alcotest.fail "no alive-check event"

let test_alive_check_triggers_resubmission () =
  let st, _ = prepared ~sn:(mk_sn 0) (A.init ~site:a) in
  let _, effs =
    A.step cfg st (A.Alive_fired { env = env ~now:7 ~views:[ (1, v ~alive:false ()) ] (); gid = 1 })
  in
  Alcotest.(check bool) "begins a fresh incarnation" true (has_call effs (A.L_begin { gid = 1; inc = 1 }));
  Alcotest.(check bool) "incarnation noted" true (has_log effs (A.R_incarnation { gid = 1; inc = 1 }));
  Alcotest.(check bool) "replays the logged command" true
    (has_call effs (A.L_exec { gid = 1; inc = 1; purpose = A.Feed; cmd }));
  Alcotest.(check bool) "still re-arms the alive check" true (has_arm effs (A.T_alive 1))

let test_step_is_pure () =
  (* The same state stepped twice produces the same result — the alive
     table is copied, never mutated in place. *)
  let st, _ = prepared ~sn:(mk_sn 0) (A.init ~site:a) in
  let input = A.Alive_fired { env = env ~now:7 ~views:[ (1, v ()) ] (); gid = 1 } in
  let st1, effs1 = A.step cfg st input in
  let st2, effs2 = A.step cfg st input in
  Alcotest.(check bool) "same effects" true (effs1 = effs2);
  Alcotest.(check bool) "same successor table" true
    (List.map
       (fun (e : Alive_table.entry) -> (e.Alive_table.gid, e.Alive_table.intervals))
       (Alive_table.entries st1.A.table)
    = List.map
        (fun (e : Alive_table.entry) -> (e.Alive_table.gid, e.Alive_table.intervals))
        (Alive_table.entries st2.A.table))

(* ------------------------------------------------------------------ *)
(* Agent machine: Appendix C (commit certification)                     *)
(* ------------------------------------------------------------------ *)

let test_commit_certification_delays_and_releases () =
  (* T1 holds sn 0, T2 holds sn 1: T2's COMMIT must wait for T1. *)
  let st, _ = prepared ~gid:1 ~sn:(mk_sn 0) (A.init ~site:a) in
  let st, _ = prepared ~gid:2 ~sn:(mk_sn 1) ~views:[ (1, v ()); (2, v ()) ] st in
  let both = [ (1, v ()); (2, v ()) ] in
  let st, effs = deliver ~env:(env ~views:both ()) st ~gid:2 Wire.Commit in
  (match
     List.find_map
       (function T.Emit (A.Ev_commit_delayed { blocking_gid; _ }) -> Some blocking_gid | _ -> None)
       effs
   with
  | Some blocking -> Alcotest.(check int) "blocked by T1" 1 blocking
  | None -> Alcotest.fail "expected Ev_commit_delayed");
  Alcotest.(check bool) "retry armed" true (has_arm effs (A.T_commit_retry 2));
  Alcotest.(check bool) "no local commit yet" true (not (has_call effs (A.L_commit { gid = 2; inc = 0 })));
  (* T1 commits and leaves the table... *)
  let st, effs1 = deliver ~env:(env ~views:both ()) st ~gid:1 Wire.Commit in
  Alcotest.(check bool) "T1 commits immediately" true (has_call effs1 (A.L_commit { gid = 1; inc = 0 }));
  let st, effs1d =
    A.step cfg st (A.Commit_done { env = env ~views:both (); gid = 1; inc = 0; committed = true })
  in
  Alcotest.(check bool) "T1 acks" true (has_send effs1d Wire.Commit_ack);
  Alcotest.(check bool) "T1 cancels its alive timer" true (has_cancel effs1d (A.T_alive 1));
  (* ... and the retry releases T2. *)
  let _, effs2 = A.step cfg st (A.Retry_fired { env = env ~views:both (); gid = 2 }) in
  Alcotest.(check bool) "commit record forced" true (has_log effs2 (A.R_commit { gid = 2 }));
  Alcotest.(check bool) "local commit released" true (has_call effs2 (A.L_commit { gid = 2; inc = 0 }))

let test_commit_unknown_uncommitted_fails () =
  Alcotest.check_raises "protocol violation trips the machine"
    (Failure "agent a: COMMIT for unknown, uncommitted T9") (fun () ->
      ignore (deliver (A.init ~site:a) ~gid:9 Wire.Commit))

(* ------------------------------------------------------------------ *)
(* Agent machine: the in-doubt termination protocol                     *)
(* ------------------------------------------------------------------ *)

let ienv ?(now = 0) ?(views = []) () = env ~now ~views ~inquiry:true ()

(* Prepare with the termination protocol engaged (env.inquiry = true). *)
let prepared_inquiring ?(gid = 1) st =
  let st, _ = deliver st ~gid (Wire.Begin { epoch = 0 }) in
  let st, _ = deliver st ~gid (Wire.Exec { step = 0; cmd; epoch = 0 }) in
  let st, _ =
    A.step cfg st
      (A.Exec_done
         { env = ienv (); gid; inc = 0; purpose = A.Reply 0; result = A.Done (Command.Count 1) })
  in
  deliver ~env:(ienv ~views:[ (gid, v ()) ] ()) st ~gid (Wire.Prepare (mk_sn 0))

let test_inquiry_armed_on_prepare () =
  let _, effs = prepared_inquiring (A.init ~site:a) in
  Alcotest.(check bool) "votes READY" true (has_send effs Wire.Ready);
  Alcotest.(check bool) "in-doubt window opened" true
    (List.exists (function T.Emit (A.Ev_in_doubt { gid = 1 }) -> true | _ -> false) effs);
  Alcotest.(check bool) "inquiry timer armed" true (has_arm effs (A.T_inquiry 1));
  (* Without the termination protocol the prepare is identical minus the
     inquiry timer. *)
  let _, effs' = prepared ~sn:(mk_sn 0) (A.init ~site:a) in
  Alcotest.(check bool) "no inquiry timer without env.inquiry" true
    (not (has_arm effs' (A.T_inquiry 1)))

let test_inquiry_fires_sends_decision_req () =
  let st, _ = prepared_inquiring (A.init ~site:a) in
  let st, effs = A.step cfg st (A.Inquiry_fired { env = ienv ~now:60_000 (); gid = 1 }) in
  Alcotest.(check bool) "asks the coordinator" true (has_send effs Wire.Decision_req);
  Alcotest.(check bool) "re-arms itself" true (has_arm effs (A.T_inquiry 1));
  Alcotest.(check bool) "inquiry counted" true
    (List.exists
       (function T.Emit (A.Ev_decision_inquiry { gid = 1; inquiries = 1 }) -> true | _ -> false)
       effs);
  (* A second firing asks again. *)
  let _, effs2 = A.step cfg st (A.Inquiry_fired { env = ienv ~now:120_000 (); gid = 1 }) in
  Alcotest.(check bool) "asks again" true (has_send effs2 Wire.Decision_req)

let test_decision_resp_translates_to_commit () =
  let st, _ = prepared_inquiring (A.init ~site:a) in
  let _, effs =
    deliver ~env:(ienv ~now:7 ~views:[ (1, v ()) ] ()) st ~gid:1 (Wire.Decision_resp { committed = true })
  in
  Alcotest.(check bool) "commit record forced" true (has_log effs (A.R_commit { gid = 1 }));
  Alcotest.(check bool) "local commit driven" true (has_call effs (A.L_commit { gid = 1; inc = 0 }));
  Alcotest.(check bool) "in-doubt window closed (7 ticks)" true
    (List.exists
       (function
         | T.Emit (A.Ev_decision { gid = 1; committed = true; in_doubt = 7 }) -> true
         | _ -> false)
       effs);
  Alcotest.(check bool) "inquiry timer cancelled" true (has_cancel effs (A.T_inquiry 1))

let test_decision_resp_translates_to_rollback () =
  let st, _ = prepared_inquiring (A.init ~site:a) in
  let _, effs =
    deliver ~env:(ienv ~now:9 ()) st ~gid:1 (Wire.Decision_resp { committed = false })
  in
  Alcotest.(check bool) "local abort" true (has_call effs (A.L_abort { gid = 1 }));
  Alcotest.(check bool) "acks the rollback" true (has_send effs Wire.Rollback_ack);
  Alcotest.(check bool) "in-doubt window closed" true
    (List.exists
       (function T.Emit (A.Ev_decision { gid = 1; committed = false; _ }) -> true | _ -> false)
       effs)

let test_recovery_replay_commits_once () =
  (* Crash a prepared-and-decided subtransaction, recover it from the log
     and let the replay finish: exactly one commit record and one local
     commit, and a duplicate COMMIT arriving afterwards is a no-op. *)
  let st, _ = prepared ~sn:(mk_sn 0) (A.init ~site:a) in
  let st, _ = deliver ~env:(env ~views:[ (1, v ()) ] ()) st ~gid:1 Wire.Commit in
  let st, _ = A.step cfg st (A.Crash { live = 1 }) in
  Alcotest.(check int) "volatile state gone" 0 (A.n_prepared st);
  let entry =
    {
      A.r_gid = 1;
      r_coordinator = coord;
      r_inc = 0;
      r_sn = Some (mk_sn 0);
      r_commands = [ cmd ];
      r_committed = true;
    }
  in
  let st, effs = A.step cfg st (A.Recover { env = env ~now:10 (); entries = [ entry ] }) in
  Alcotest.(check bool) "recovered event" true
    (List.exists
       (function T.Emit (A.Ev_recovered { gid = 1; committed = true }) -> true | _ -> false)
       effs);
  Alcotest.(check bool) "decided entry is not re-announced in doubt" true
    (not (List.exists (function T.Emit (A.Ev_in_doubt _) -> true | _ -> false) effs));
  Alcotest.(check bool) "replays the logged command" true
    (has_call effs (A.L_exec { gid = 1; inc = 1; purpose = A.Feed; cmd }));
  (* Replay completes: the commit is redone exactly once. *)
  let st, effs =
    A.step cfg st
      (A.Exec_done
         { env = env ~now:11 ~views:[ (1, v ()) ] (); gid = 1; inc = 1; purpose = A.Feed;
           result = A.Done (Command.Count 1) })
  in
  Alcotest.(check bool) "commit record re-forced" true (has_log effs (A.R_commit { gid = 1 }));
  Alcotest.(check bool) "local commit redone" true (has_call effs (A.L_commit { gid = 1; inc = 1 }));
  (* A duplicate COMMIT while the redo is in flight changes nothing. *)
  let _, effs_dup = deliver ~env:(env ~now:12 ~views:[ (1, v ()) ] ()) st ~gid:1 Wire.Commit in
  Alcotest.(check bool) "duplicate COMMIT is a no-op" true (effs_dup = [])

let test_recovery_undecided_rearms_inquiry () =
  (* An undecided recovered entry reopens its in-doubt window and, with
     the termination protocol engaged, restarts the inquiry timer. *)
  let entry =
    {
      A.r_gid = 4;
      r_coordinator = Wire.Coordinator 4;
      r_inc = 2;
      r_sn = Some (mk_sn 1);
      r_commands = [ cmd ];
      r_committed = false;
    }
  in
  let st = A.init ~site:a in
  let _, effs = A.step cfg st (A.Recover { env = ienv ~now:50 (); entries = [ entry ] }) in
  Alcotest.(check bool) "back in doubt" true
    (List.exists (function T.Emit (A.Ev_in_doubt { gid = 4 }) -> true | _ -> false) effs);
  Alcotest.(check bool) "inquiry timer restarted" true (has_arm effs (A.T_inquiry 4));
  (* Without the termination protocol: in doubt, but no inquiry timer. *)
  let _, effs' = A.step cfg st (A.Recover { env = env ~now:50 (); entries = [ entry ] }) in
  Alcotest.(check bool) "no inquiry timer without env.inquiry" true
    (not (has_arm effs' (A.T_inquiry 4)))

(* ------------------------------------------------------------------ *)
(* Coordinator machine: 2PC decision rules                              *)
(* ------------------------------------------------------------------ *)

let ccfg ?quorum () = Csm.config ?quorum cfg

let coord_init () =
  Csm.init ~gid:1 ~site:a ~participants:[ a; b ] ~steps:[ (a, cmd); (b, cmd) ] ~sn:None

let cstep ?quorum st input = Csm.step (ccfg ?quorum ()) st input

let csends effs = List.filter_map (function T.Send { dst; payload; _ } -> Some (dst, payload) | _ -> None) effs

(* Drive the coordinator to the Preparing phase. *)
let preparing ?quorum () =
  let st, _ = cstep ?quorum (coord_init ()) Csm.Start in
  let st, _ =
    cstep ?quorum st (Csm.From_agent { src = a; payload = Wire.Exec_ok { step = 0; result = Command.Count 1 } })
  in
  let st, effs =
    cstep ?quorum st (Csm.From_agent { src = b; payload = Wire.Exec_ok { step = 0; result = Command.Count 1 } })
  in
  Alcotest.(check bool) "gate invoked" true (List.mem T.Invoke_gate effs);
  let st, effs = cstep ?quorum st (Csm.Gate_opened { sn = Some (mk_sn 0); lossy = false }) in
  Alcotest.(check bool) "PREPARE to both" true
    (List.length (List.filter (fun (_, p) -> p = Wire.Prepare (mk_sn 0)) (csends effs)) = 2);
  st

let test_coordinator_happy_path () =
  let st, effs = cstep (coord_init ()) Csm.Start in
  Alcotest.(check bool) "BEGIN broadcast" true
    (List.length (List.filter (fun (_, p) -> p = Wire.Begin { epoch = 0 }) (csends effs)) = 2);
  Alcotest.(check bool) "first command out" true
    (has_send effs (Wire.Exec { step = 0; cmd; epoch = 0 }));
  Alcotest.(check bool) "exec timeout armed" true (has_arm effs Csm.Exec_timeout);
  ignore st

let test_coordinator_commit_requires_both_votes () =
  let st = preparing () in
  let st, effs = cstep st (Csm.From_agent { src = a; payload = Wire.Ready }) in
  Alcotest.(check bool) "one vote: no decision" true (sends effs = []);
  (* A duplicated READY from the same site must not complete the quorum. *)
  let st, effs = cstep st (Csm.From_agent { src = a; payload = Wire.Ready }) in
  Alcotest.(check bool) "duplicate vote ignored" true (sends effs = []);
  let st, effs = cstep st (Csm.From_agent { src = b; payload = Wire.Ready }) in
  Alcotest.(check bool) "COMMIT broadcast" true
    (List.length (List.filter (fun (_, p) -> p = Wire.Commit) (csends effs)) = 2);
  Alcotest.(check bool) "global commit recorded" true
    (List.exists (function T.Record (T.H_global_commit _) -> true | _ -> false) effs);
  (* Acks complete the decision. *)
  let st, effs = cstep st (Csm.From_agent { src = a; payload = Wire.Commit_ack }) in
  Alcotest.(check bool) "one ack: not finished" true
    (not (List.exists (function T.Decide _ -> true | _ -> false) effs));
  let _, effs = cstep st (Csm.From_agent { src = b; payload = Wire.Commit_ack }) in
  Alcotest.(check bool) "decides Committed" true (List.mem (T.Decide T.Committed) effs)

let test_coordinator_counted_quorum_bug () =
  (* The historical fake-quorum bug, reproduced as a unit test: under
     [Counted], two copies of the same READY decide the commit. *)
  let st = preparing ~quorum:Csm.Counted () in
  let st, _ = cstep ~quorum:Csm.Counted st (Csm.From_agent { src = a; payload = Wire.Ready }) in
  let _, effs = cstep ~quorum:Csm.Counted st (Csm.From_agent { src = a; payload = Wire.Ready }) in
  Alcotest.(check bool) "duplicate READY fakes the quorum" true
    (List.exists (fun (_, p) -> p = Wire.Commit) (csends effs))

let test_coordinator_refusal_aborts () =
  let st = preparing () in
  let st, _ = cstep st (Csm.From_agent { src = a; payload = Wire.Refuse Wire.Interval_refused }) in
  let st, effs = cstep st (Csm.From_agent { src = b; payload = Wire.Ready }) in
  Alcotest.(check bool) "ROLLBACK broadcast" true
    (List.length (List.filter (fun (_, p) -> p = Wire.Rollback) (csends effs)) = 2);
  let st, _ = cstep st (Csm.From_agent { src = a; payload = Wire.Rollback_ack }) in
  let _, effs = cstep st (Csm.From_agent { src = b; payload = Wire.Rollback_ack }) in
  Alcotest.(check bool) "decides Aborted(Refused)" true
    (List.exists
       (function T.Decide (T.Aborted (T.Refused (s, Wire.Interval_refused))) -> Site.equal s a | _ -> false)
       effs)

let test_coordinator_exec_timeout_aborts () =
  let st, _ = cstep (coord_init ()) Csm.Start in
  let _, effs = cstep st Csm.Exec_timeout_fired in
  Alcotest.(check bool) "ROLLBACK broadcast" true
    (List.exists (fun (_, p) -> p = Wire.Rollback) (csends effs));
  Alcotest.(check bool) "abort reason names the silent site" true
    (List.exists
       (function T.Emit (Csm.Deciding_abort (T.Exec_failed (s, _))) -> Site.equal s a | _ -> false)
       effs)

(* ------------------------------------------------------------------ *)
(* Coordinator machine: durability and crash recovery                   *)
(* ------------------------------------------------------------------ *)

let test_coordinator_force_log_records () =
  (* The two force points of the symmetric coordinator log: the
     participant set at PREPARE-send, the decision at decide time (the
     begin record rides along at Start). *)
  let _, effs = cstep (coord_init ()) Csm.Start in
  Alcotest.(check bool) "begin record forced at Start" true
    (List.exists
       (function T.Force_log (Csm.R_begin { participants = [ x; y ] }) -> x = a && y = b | _ -> false)
       effs);
  let st, _ = cstep (coord_init ()) Csm.Start in
  let st, _ =
    cstep st (Csm.From_agent { src = a; payload = Wire.Exec_ok { step = 0; result = Command.Count 1 } })
  in
  let st, _ =
    cstep st (Csm.From_agent { src = b; payload = Wire.Exec_ok { step = 0; result = Command.Count 1 } })
  in
  let st, effs = cstep st (Csm.Gate_opened { sn = Some (mk_sn 0); lossy = false }) in
  Alcotest.(check bool) "prepared record forced before the PREPAREs" true
    (List.exists
       (function T.Force_log (Csm.R_prepared { sn; _ }) -> Sn.equal sn (mk_sn 0) | _ -> false)
       effs);
  let st, _ = cstep st (Csm.From_agent { src = a; payload = Wire.Ready }) in
  let _, effs = cstep st (Csm.From_agent { src = b; payload = Wire.Ready }) in
  Alcotest.(check bool) "decision record forced with the COMMITs" true
    (List.exists (function T.Force_log (Csm.R_decision { committed = true }) -> true | _ -> false) effs)

let test_coordinator_crash_then_recover_redrives_commit () =
  (* Crash after the COMMIT decision: recovery from the logged decision
     re-broadcasts COMMIT until both participants acknowledge. *)
  let st = preparing () in
  let st, _ = cstep st (Csm.From_agent { src = a; payload = Wire.Ready }) in
  let st, _ = cstep st (Csm.From_agent { src = b; payload = Wire.Ready }) in
  let st, _ = cstep st (Csm.From_agent { src = a; payload = Wire.Commit_ack }) in
  let st, crash_effs = cstep st Csm.Crash in
  Alcotest.(check bool) "crash silences the retransmit timer" true
    (has_cancel crash_effs Csm.Retransmit);
  let st, effs =
    cstep st (Csm.Recover { participants = [ a; b ]; sn = Some (mk_sn 0); decision = Some true })
  in
  Alcotest.(check bool) "recovered with the commit decision" true
    (List.exists (function T.Emit (Csm.Recovered { decision = Some true }) -> true | _ -> false) effs);
  Alcotest.(check int) "COMMIT re-driven to every participant" 2
    (List.length (List.filter (fun (_, p) -> p = Wire.Commit) (csends effs)));
  Alcotest.(check bool) "retransmission armed" true (has_arm effs Csm.Retransmit);
  (* Fresh acks (the pre-crash ack set is volatile and lost) finish it. *)
  let st, _ = cstep st (Csm.From_agent { src = a; payload = Wire.Commit_ack }) in
  let _, effs = cstep st (Csm.From_agent { src = b; payload = Wire.Commit_ack }) in
  Alcotest.(check bool) "decides Committed" true (List.mem (T.Decide T.Committed) effs)

let test_coordinator_recover_presumes_abort () =
  (* Crash between PREPARE and the decision: no decision record, so
     recovery presumes abort and tells the in-doubt participants. *)
  let st = preparing () in
  let st, _ = cstep st (Csm.From_agent { src = a; payload = Wire.Ready }) in
  let st, _ = cstep st Csm.Crash in
  let st, effs =
    cstep st (Csm.Recover { participants = [ a; b ]; sn = Some (mk_sn 0); decision = None })
  in
  Alcotest.(check bool) "presumed-abort decision forced" true
    (List.exists (function T.Force_log (Csm.R_decision { committed = false }) -> true | _ -> false) effs);
  Alcotest.(check int) "ROLLBACK to every participant" 2
    (List.length (List.filter (fun (_, p) -> p = Wire.Rollback) (csends effs)));
  let st, _ = cstep st (Csm.From_agent { src = a; payload = Wire.Rollback_ack }) in
  let _, effs = cstep st (Csm.From_agent { src = b; payload = Wire.Rollback_ack }) in
  Alcotest.(check bool) "decides Aborted(Presumed_abort)" true
    (List.mem (T.Decide (T.Aborted T.Presumed_abort)) effs)

let test_coordinator_answers_decision_req () =
  (* The termination protocol's server side: once decided, DECISION-REQ
     gets the decision; while still undecided it is silently absorbed
     (the asker's timer re-fires). *)
  let st = preparing () in
  let _, effs = cstep st (Csm.From_agent { src = a; payload = Wire.Decision_req }) in
  Alcotest.(check bool) "undecided: no answer yet" true (csends effs = []);
  let st, _ = cstep st (Csm.From_agent { src = a; payload = Wire.Ready }) in
  let st, _ = cstep st (Csm.From_agent { src = b; payload = Wire.Ready }) in
  let _, effs = cstep st (Csm.From_agent { src = b; payload = Wire.Decision_req }) in
  Alcotest.(check bool) "committed answer to the asker" true
    (List.mem (Wire.Agent b, Wire.Decision_resp { committed = true }) (csends effs));
  Alcotest.(check bool) "inquiry answered event" true
    (List.exists
       (function
         | T.Emit (Csm.Answering_inquiry { asker; committed = true }) -> Site.equal asker b
         | _ -> false)
       effs)

(* ------------------------------------------------------------------ *)
(* The bounded model checker                                            *)
(* ------------------------------------------------------------------ *)

let check_clean name (st : Explore.stats) =
  Alcotest.(check bool) (name ^ ": exhausted") false st.Explore.truncated;
  Alcotest.(check int) (name ^ ": no violations") 0 st.Explore.n_violations;
  Alcotest.(check bool) (name ^ ": reached terminals") true (st.Explore.terminals > 0)

let test_explore_reorderings_clean () =
  (* Every message reordering of two concurrent transactions over two
     sites, plus blocked-commit retries: exhaustive and violation-free. *)
  let st =
    Explore.run
      {
        Explore.default with
        Explore.budgets = { Explore.no_faults with Explore.commit_retries = 2 };
      }
  in
  check_clean "2x2 reorderings" st;
  Alcotest.(check bool) "nontrivial space" true (st.Explore.states > 10_000)

let test_explore_faults_clean () =
  (* One transaction under the full fault mix: a unilateral abort, an
     alive-check firing, a commit retry and a crash+recovery point
     anywhere in the schedule. *)
  let st =
    Explore.run
      {
        Explore.default with
        Explore.n_txns = 1;
        budgets =
          {
            Explore.no_faults with
            Explore.uaborts = 1;
            alive_fires = 1;
            commit_retries = 1;
            crashes = 1;
          };
      }
  in
  check_clean "2x1 faults" st

let test_explore_losses_clean () =
  (* One transaction on a lossy network: any single message dropped,
     with PREPARE/decision retransmission and the exec timeout. *)
  let st =
    Explore.run
      {
        Explore.default with
        Explore.n_txns = 1;
        budgets =
          {
            Explore.no_faults with
            Explore.drops = 1;
            retransmits = 2;
            exec_timeouts = 1;
          };
      }
  in
  check_clean "2x1 losses" st

let fake_quorum_scenario quorum =
  {
    Explore.default with
    Explore.n_txns = 1;
    quorum;
    budgets = { Explore.no_faults with Explore.dups = 1 };
  }

let test_explore_finds_fake_quorum () =
  (* Regression for the duplicate-READY fake-quorum bug: with votes
     reverted to a raw counter, the checker must rediscover it. *)
  let st = Explore.run (fake_quorum_scenario Csm.Counted) in
  Alcotest.(check bool) "violations found" true (st.Explore.n_violations > 0);
  Alcotest.(check bool) "counterexamples reported" true (st.Explore.violations <> [])

let test_explore_dedup_quorum_clean () =
  (* The fix (per-site vote dedup) survives the same adversary. *)
  check_clean "2x1 dup votes" (Explore.run (fake_quorum_scenario Csm.Dedup))

let coord_crash_scenario ~termination =
  {
    Explore.default with
    Explore.n_txns = 1;
    termination;
    budgets =
      { Explore.no_faults with Explore.coord_crashes = 1; inquiries = 1; retransmits = 1 };
  }

let test_explore_coord_crash_clean () =
  (* A coordinator crash anywhere in the schedule, with log-based
     recovery and the termination protocol: exhaustive and clean (every
     terminal state resolves its in-doubt entries). *)
  let st = Explore.run (coord_crash_scenario ~termination:true) in
  check_clean "2x1 coordinator crash" st

let test_explore_no_termination_blocks_forever () =
  (* Ablation: the coordinator stays dead and nobody asks — the I5
     liveness invariant must find a terminal state with a forever-blocked
     in-doubt participant. *)
  let st = Explore.run (coord_crash_scenario ~termination:false) in
  Alcotest.(check bool) "violations found" true (st.Explore.n_violations > 0);
  Alcotest.(check bool) "an I5 counterexample is reported" true
    (List.exists
       (fun (msg, _) -> String.length msg >= 2 && String.sub msg 0 2 = "I5")
       st.Explore.violations)

let reconfigure_scenario ~handover =
  (* Two single-shard transactions on two sites so a shard move can gain
     a site that is NOT a native participant — the only shape where the
     I6(b) handover obligation bites (a participating gainer certifies
     the gid through its own prepare path). *)
  {
    Explore.default with
    Explore.n_txns = 2;
    txn_shards = 1;
    handover;
    budgets = { Explore.no_faults with Explore.reconfigures = 1 };
  }

let test_explore_reconfigure_clean () =
  (* An online shard move anywhere in the schedule, with prepared-state
     handover: exhaustive and clean under I6. *)
  let st = Explore.run (reconfigure_scenario ~handover:true) in
  check_clean "2x2 reconfigure" st

let test_explore_no_handover_unsound () =
  (* Ablation: install the new epoch without handing over the loser's
     prepared certification state — I6 must find the unsound window. *)
  let st = Explore.run (reconfigure_scenario ~handover:false) in
  Alcotest.(check bool) "violations found" true (st.Explore.n_violations > 0);
  Alcotest.(check bool) "an I6 counterexample is reported" true
    (List.exists
       (fun (msg, _) -> String.length msg >= 2 && String.sub msg 0 2 = "I6")
       st.Explore.violations)

(* ------------------------------------------------------------------ *)
(* Timer hygiene: a quiesced run leaves no live engine timers           *)
(* ------------------------------------------------------------------ *)

let quiesced_run ?(certifier = Config.full) ~net_config () =
  let engine = Engine.create () in
  let rng = Rng.create ~seed:42 in
  let trace = Trace.create () in
  let dtm =
    Dtm.create ~engine ~rng ~trace ~net_config ~certifier
      ~site_specs:(Array.init 2 (fun _ -> Dtm.default_site_spec))
      ()
  in
  List.iter
    (fun s -> List.iter (fun k -> Dtm.load dtm s ~table:"X" ~key:k ~value:100) [ 0; 1; 2 ])
    (Dtm.site_ids dtm);
  let finished = ref 0 in
  for i = 0 to 4 do
    ignore
      (Dtm.submit dtm
         (Program.make
            [
              (a, Command.Update { table = "X"; key = i mod 3; delta = 1 });
              (b, Command.Update { table = "X"; key = i mod 3; delta = -1 });
            ])
         ~on_done:(fun _ -> incr finished))
  done;
  Engine.run engine;
  (* The queue drained: every alive-check / retry / retransmission timer
     armed during the run was cancelled on a terminal transition (and
     popped), so none is live — a leaked periodic timer would instead
     re-arm forever and hang this test. *)
  Alcotest.(check int) "all transactions finished" 5 !finished;
  Alcotest.(check int) "quiesced run leaves no live timers" 0 (Engine.stats engine).Engine.live;
  dtm

let test_quiesced_no_live_timers () =
  ignore (quiesced_run ~net_config:Network.default_config () : Dtm.t)

let test_quiesced_no_live_timers_dup_network () =
  ignore
    (quiesced_run
       ~net_config:
         { Network.default_config with Network.faults = { Network.no_faults with Network.dup = 1.0 } }
       ()
      : Dtm.t)

(* ------------------------------------------------------------------ *)
(* Group commit: buffered PREPAREs, staged decisions, the batch force   *)
(* ------------------------------------------------------------------ *)

let gcfg = { cfg with Config.group_commit_window = 1_000; max_batch = 8 }
let force_batches effs = List.filter_map (function T.Force_batch rs -> Some rs | _ -> None) effs

let any_force effs =
  List.exists (function T.Force_log _ | T.Force_batch _ -> true | _ -> false) effs

(* BEGIN + EXEC one subtransaction, stopping short of the PREPARE. *)
let begun ?(cfg = gcfg) st gid =
  let st, _ = deliver ~cfg st ~gid (Wire.Begin { epoch = 0 }) in
  let st, _ = deliver ~cfg st ~gid (Wire.Exec { step = 0; cmd; epoch = 0 }) in
  let st, _ =
    A.step cfg st
      (A.Exec_done
         { env = env (); gid; inc = 0; purpose = A.Reply 0; result = A.Done (Command.Count 1) })
  in
  st

let test_gc_prepare_buffers_until_flush () =
  let st = begun (A.init ~site:a) 1 in
  let st, effs1 = deliver ~cfg:gcfg st ~gid:1 (Wire.Prepare (mk_sn 0)) in
  Alcotest.(check bool) "no vote before the flush" true (sends effs1 = []);
  Alcotest.(check bool) "nothing forced before the flush" true (not (any_force effs1));
  Alcotest.(check bool) "flush timer armed" true (has_arm effs1 A.T_flush);
  let st = begun st 2 in
  let st, effs2 = deliver ~cfg:gcfg st ~gid:2 (Wire.Prepare (mk_sn 1)) in
  Alcotest.(check bool) "second PREPARE buffers silently" true (effs2 = []);
  Alcotest.(check int) "two buffered" 2 (A.buffered_prepares st);
  let st, effs =
    A.step gcfg st (A.Flush_fired { env = env ~views:[ (1, v ()); (2, v ()) ] () })
  in
  Alcotest.(check int) "both vote READY at the flush" 2
    (List.length (List.filter (( = ) Wire.Ready) (sends effs)));
  (match force_batches effs with
  | [ records ] ->
      Alcotest.(check bool) "one batch force carries both promises, in arrival order" true
        (records = [ A.R_prepare { gid = 1; sn = mk_sn 0 }; A.R_prepare { gid = 2; sn = mk_sn 1 } ])
  | l -> Alcotest.failf "expected exactly one Force_batch, got %d" (List.length l));
  Alcotest.(check bool) "hold-opens coalesced into one LTM round-trip" true
    (has_call effs (A.L_hold_open_batch { gids = [ 1; 2 ] }));
  Alcotest.(check bool) "per-gid hold-opens replaced" true
    ((not (has_call effs (A.L_hold_open { gid = 1 })))
    && not (has_call effs (A.L_hold_open { gid = 2 })));
  Alcotest.(check int) "both certified into the table" 2 (A.n_prepared st);
  Alcotest.(check bool) "no residue after the flush" true
    ((not (A.flush_pending st)) && not (A.flush_armed st))

let test_gc_max_batch_forces_inline () =
  (* A fill to [max_batch] forces inside the delivering step: no waiting
     for the window, and the armed flush timer is cancelled. *)
  let gcfg2 = { gcfg with Config.max_batch = 2 } in
  let st = begun ~cfg:gcfg2 (A.init ~site:a) 1 in
  let st = begun ~cfg:gcfg2 st 2 in
  let st, _ = deliver ~cfg:gcfg2 st ~gid:1 (Wire.Prepare (mk_sn 0)) in
  let st, effs =
    deliver ~cfg:gcfg2
      ~env:(env ~views:[ (1, v ()); (2, v ()) ] ())
      st ~gid:2 (Wire.Prepare (mk_sn 1))
  in
  Alcotest.(check int) "one batch force at the fill" 1 (List.length (force_batches effs));
  Alcotest.(check bool) "flush timer cancelled" true (has_cancel effs A.T_flush);
  Alcotest.(check int) "both vote READY" 2
    (List.length (List.filter (( = ) Wire.Ready) (sends effs)));
  Alcotest.(check bool) "no residue" true
    ((not (A.flush_pending st)) && not (A.flush_armed st))

let test_gc_decision_staged_until_flush () =
  let views = [ (1, v ()) ] in
  let st = begun (A.init ~site:a) 1 in
  let st, _ = deliver ~cfg:gcfg st ~gid:1 (Wire.Prepare (mk_sn 0)) in
  let st, _ = A.step gcfg st (A.Flush_fired { env = env ~views () }) in
  let st, effs = deliver ~cfg:gcfg ~env:(env ~views ()) st ~gid:1 Wire.Commit in
  Alcotest.(check bool) "decision staged, not forced" true (not (any_force effs));
  Alcotest.(check bool) "local commit withheld until the batch force" true
    (not (has_call effs (A.L_commit { gid = 1; inc = 0 })));
  Alcotest.(check int) "one staged record" 1 (A.staged_records st);
  Alcotest.(check bool) "flush timer re-armed" true (has_arm effs A.T_flush);
  let _, effs = A.step gcfg st (A.Flush_fired { env = env ~views () }) in
  (match force_batches effs with
  | [ [ r ] ] ->
      Alcotest.(check bool) "the commit record is the batch" true (r = A.R_commit { gid = 1 })
  | _ -> Alcotest.fail "expected one single-record Force_batch");
  Alcotest.(check bool) "local commit released with the force" true
    (has_call effs (A.L_commit { gid = 1; inc = 0 }))

let test_gc_crash_loses_staged_state () =
  (* Staged-but-unforced records and buffered PREPAREs are volatile:
     exactly the durability the protocol expects of an unforced record. *)
  let st = begun (A.init ~site:a) 1 in
  let st, _ = deliver ~cfg:gcfg st ~gid:1 (Wire.Prepare (mk_sn 0)) in
  let st, effs = A.step gcfg st (A.Crash { live = 0 }) in
  Alcotest.(check bool) "flush timer cancelled on crash" true (has_cancel effs A.T_flush);
  Alcotest.(check bool) "buffered and staged state wiped" true
    ((not (A.flush_pending st)) && not (A.flush_armed st))

let prop_gc_batched_equals_sequential =
  (* The vectorized certification pass at a flush must reach exactly the
     per-gid verdicts that per-message certification reaches, for any mix
     of timestamps and any already-committed max SN. *)
  QCheck.Test.make ~name:"batched certification decides like per-message" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 1 6) (int_bound 1000)) (option (int_bound 1000)))
    (fun (stamps, max_ts) ->
      let max_sn = Option.map (fun ts -> mk_sn ~ts 99) max_ts in
      let views = List.mapi (fun i _ -> (i + 1, v ())) stamps in
      let e = env ~views ?max_sn () in
      let sns = List.mapi (fun i ts -> (i + 1, mk_sn ~ts (i + 1))) stamps in
      let votes effs =
        List.filter_map
          (function
            | T.Send { gid; payload = (Wire.Ready | Wire.Refuse _) as p; _ } -> Some (gid, p)
            | _ -> None)
          effs
      in
      (* Per-message: certify each PREPARE on arrival (batching off). *)
      let seq_votes =
        snd
          (List.fold_left
             (fun (st, acc) (gid, sn) ->
               let st = begun ~cfg st gid in
               let st, effs = deliver ~env:e st ~gid (Wire.Prepare sn) in
               (st, acc @ votes effs))
             (A.init ~site:a, []) sns)
      in
      (* Batched: buffer them all, then vector-certify at one flush. *)
      let batch_votes =
        let st =
          List.fold_left
            (fun st (gid, sn) ->
              let st = begun ~cfg:gcfg st gid in
              fst (deliver ~cfg:gcfg ~env:e st ~gid (Wire.Prepare sn)))
            (A.init ~site:a) sns
        in
        votes (snd (A.step gcfg st (A.Flush_fired { env = e })))
      in
      List.sort compare seq_votes = List.sort compare batch_votes)

let gc_certifier = { Config.full with Config.group_commit_window = 1_000; max_batch = 8 }

let test_gc_forces_drop_per_batch () =
  (* End-to-end: 5 two-site globals pay 2 agent forces per subtransaction
     (prepare + commit = 20 total) and 3 coordinator forces per
     transaction (15 total) without batching; group commit must amortize
     both well below that, and a quiesced run must leave no armed flush
     timer and no staged-but-unforced records. *)
  let dtm = quiesced_run ~certifier:gc_certifier ~net_config:Network.default_config () in
  let t = Dtm.totals dtm in
  Alcotest.(check bool) "agent forces amortized" true (t.Dtm.agent_log_forces < 20);
  Alcotest.(check bool) "coordinator forces amortized" true (t.Dtm.coord_log_forces < 15);
  Alcotest.(check bool) "coordinator batcher engaged" true
    (t.Dtm.gc_flushes > 0 && t.Dtm.gc_staged >= t.Dtm.gc_flushes);
  List.iter
    (fun s ->
      Alcotest.(check bool) "no staged-but-unforced records" true
        (not (Hermes_core.Agent.flush_pending (Dtm.agent dtm s))))
    (Dtm.site_ids dtm)

let test_gc_run_digest_deterministic () =
  (* Two identically-seeded batched runs are byte-identical: the flush
     timer and batch forces are as deterministic as everything else. *)
  let setup =
    {
      Driver.default_setup with
      Driver.protocol = Driver.Two_pca gc_certifier;
      seed = 21;
      spec = { Spec.default with Spec.n_global = 40 };
    }
  in
  check_golden "batched run digest stable" (run_digest setup) (run_digest setup)

let test_explore_group_commit_clean () =
  (* The checker drives the flush timer like any other: every
     interleaving of batched certification with max_batch fills is
     exhaustive, violation-free, and leaves no staged residue (the
     checker's hygiene invariant covers T_flush). *)
  let st =
    Explore.run
      {
        Explore.default with
        Explore.n_txns = 2;
        config =
          { Explore.default.Explore.config with Config.group_commit_window = 1_000; max_batch = 2 };
        budgets = Explore.no_faults;
      }
  in
  check_clean "2x2 group commit" st

(* ------------------------------------------------------------------ *)
(* Paxos Commit: the replicated decision register                       *)
(* ------------------------------------------------------------------ *)

module P = Hermes_protocol.Paxos_coordinator_sm
module Acceptor = Hermes_core.Acceptor
module Message = Hermes_net.Message

let pcfg = { cfg with Config.commit_proto = Config.Paxos { f = 1 } }
let btm_cfg = { cfg with Config.commit_proto = Config.Backup_tm }
let pcstep st input = Csm.step (Csm.config pcfg) st input

(* Drive the paxos-mode coordinator to the Preparing phase. *)
let p_preparing () =
  let st, _ = pcstep (coord_init ()) Csm.Start in
  let st, _ =
    pcstep st (Csm.From_agent { src = a; payload = Wire.Exec_ok { step = 0; result = Command.Count 1 } })
  in
  let st, _ =
    pcstep st (Csm.From_agent { src = b; payload = Wire.Exec_ok { step = 0; result = Command.Count 1 } })
  in
  fst (pcstep st (Csm.Gate_opened { sn = Some (mk_sn 0); lossy = false }))

let test_paxos_commit_waits_for_write_quorum () =
  (* All-READY proposes commit at ballot 0 to every acceptor; COMMIT is
     announced only once a write quorum (f+1 = 2 of 3) has accepted. *)
  let st = p_preparing () in
  let st, _ = pcstep st (Csm.From_agent { src = a; payload = Wire.Ready }) in
  let st, effs = pcstep st (Csm.From_agent { src = b; payload = Wire.Ready }) in
  Alcotest.(check int) "ballot-0 proposal to all 2f+1 acceptors" 3
    (List.length
       (List.filter (fun (_, p) -> p = Wire.Px_accept { ballot = 0; committed = true }) (csends effs)));
  Alcotest.(check bool) "no COMMIT before the quorum" true
    (not (List.exists (fun (_, p) -> p = Wire.Commit) (csends effs)));
  let st, effs = pcstep st (Csm.From_acceptor { idx = 0; payload = Wire.Px_accepted { ballot = 0; idx = 0 } }) in
  Alcotest.(check bool) "one ack: still replicating" true
    (not (List.exists (fun (_, p) -> p = Wire.Commit) (csends effs)));
  let _, effs = pcstep st (Csm.From_acceptor { idx = 1; payload = Wire.Px_accepted { ballot = 0; idx = 1 } }) in
  Alcotest.(check int) "write quorum reached: COMMIT broadcast" 2
    (List.length (List.filter (fun (_, p) -> p = Wire.Commit) (csends effs)))

let test_paxos_coordinator_adopts_register_abort_in_preparing () =
  (* Found by the model checker: an in-doubt participant's inquiry can
     prod a recovery ballot into presuming abort while the leader is
     still collecting votes — its ROLLBACK-ACK then arrives in the
     Preparing phase and must be adopted, not rejected. *)
  let st = p_preparing () in
  let _, effs = pcstep st (Csm.From_agent { src = a; payload = Wire.Rollback_ack }) in
  Alcotest.(check bool) "register abort adopted" true
    (List.exists (function T.Emit (Csm.Adopted { committed = false }) -> true | _ -> false) effs);
  Alcotest.(check bool) "abort decision forced" true
    (List.exists (function T.Force_log (Csm.R_decision { committed = false }) -> true | _ -> false) effs);
  Alcotest.(check int) "ROLLBACK broadcast" 2
    (List.length (List.filter (fun (_, p) -> p = Wire.Rollback) (csends effs)))

(* Acceptor-machine probes. *)
let pa = P.config pcfg
let asends effs = List.filter_map (function T.Send { dst; payload; _ } -> Some (dst, payload) | _ -> None) effs
let acc_addr idx = Wire.Acceptor { gid = 1; idx }

let astep st input = P.step pa st input
let adeliver st ~src payload = astep st (P.Deliver { src; payload })

let test_paxos_recovery_adopts_accepted_value () =
  (* The acceptor holds ballot-0 commit; a DECISION-REQ starts a full
     recovery ballot which must re-propose that value (B3) and answer
     the asker commit once a write quorum accepts. *)
  let st = P.init ~gid:1 ~idx:0 in
  let st, effs = adeliver st ~src:(Wire.Coordinator 1) (Wire.Px_accept { ballot = 0; committed = true }) in
  Alcotest.(check bool) "ballot-0 value force-accepted" true
    (List.exists
       (function T.Force_log (P.R_accepted { ballot = 0; committed = true }) -> true | _ -> false)
       effs);
  let st, effs = adeliver st ~src:(Wire.Agent b) Wire.Decision_req in
  Alcotest.(check int) "recovery ballot queries the peers" 2
    (List.length (List.filter (fun (_, p) -> p = Wire.Px_query { ballot = 1 }) (asends effs)));
  let st, effs =
    adeliver st ~src:(acc_addr 1)
      (Wire.Px_promise { ballot = 1; promised = 1; accepted = Some (0, true); idx = 1 })
  in
  Alcotest.(check int) "read quorum: phase 2 re-proposes commit" 2
    (List.length
       (List.filter (fun (_, p) -> p = Wire.Px_accept { ballot = 1; committed = true }) (asends effs)));
  let st, effs = adeliver st ~src:(acc_addr 1) (Wire.Px_accepted { ballot = 1; idx = 1 }) in
  Alcotest.(check bool) "decided commit" true (st.P.decided = Some true);
  Alcotest.(check bool) "asker answered commit" true
    (List.mem (Wire.Agent b, Wire.Decision_resp { committed = true }) (asends effs))

let test_paxos_recovery_presumes_abort_when_register_empty () =
  (* No acceptor in the read quorum ever accepted a value: the recovery
     ballot is free to choose abort (replicated presumed abort). *)
  let st = P.init ~gid:1 ~idx:0 in
  let st, _ = adeliver st ~src:(Wire.Agent b) Wire.Decision_req in
  let st, _ =
    adeliver st ~src:(acc_addr 1) (Wire.Px_promise { ballot = 1; promised = 1; accepted = None; idx = 1 })
  in
  let st, effs = adeliver st ~src:(acc_addr 1) (Wire.Px_accepted { ballot = 1; idx = 1 }) in
  Alcotest.(check bool) "decided abort" true (st.P.decided = Some false);
  Alcotest.(check bool) "asker answered rollback" true
    (List.mem (Wire.Agent b, Wire.Decision_resp { committed = false }) (asends effs))

let test_paxos_nacked_leader_rebids_above_the_nack () =
  (* A higher promise nacks the ballot; the leader abandons and the next
     DECISION-REQ re-runs in its own ballot space above the nack. *)
  let st = P.init ~gid:1 ~idx:0 in
  let st, _ = adeliver st ~src:(Wire.Agent b) Wire.Decision_req in
  let st, effs =
    adeliver st ~src:(acc_addr 1) (Wire.Px_promise { ballot = 1; promised = 5; accepted = None; idx = 1 })
  in
  Alcotest.(check bool) "nack emitted, ballot abandoned" true
    (List.exists (function T.Emit (P.Nacked { ballot = 1; promised = 5 }) -> true | _ -> false) effs);
  Alcotest.(check bool) "no sends on the nack" true (asends effs = []);
  let _, effs = adeliver st ~src:(Wire.Agent b) Wire.Decision_req in
  Alcotest.(check int) "re-bids above the promised ballot (own space)" 2
    (List.length (List.filter (fun (_, p) -> p = Wire.Px_query { ballot = 7 }) (asends effs)))

let test_backup_tm_register_decides_alone () =
  (* Backup-TM is the 1-acceptor degenerate register: read and write
     quorums are the acceptor itself, so a DECISION-REQ resolves in one
     step — presumed abort with an empty register, the held value
     otherwise. *)
  let btm = P.config btm_cfg in
  let st = P.init ~gid:1 ~idx:0 in
  let st, effs = P.step btm st (P.Deliver { src = Wire.Agent b; payload = Wire.Decision_req }) in
  Alcotest.(check bool) "empty register: abort, immediately" true (st.P.decided = Some false);
  Alcotest.(check bool) "asker answered rollback" true
    (List.mem (Wire.Agent b, Wire.Decision_resp { committed = false }) (asends effs));
  let st2 = P.init ~gid:2 ~idx:0 in
  let st2, _ =
    P.step btm st2
      (P.Deliver { src = Wire.Coordinator 2; payload = Wire.Px_accept { ballot = 0; committed = true } })
  in
  let st2, effs =
    P.step btm st2 (P.Deliver { src = Wire.Agent b; payload = Wire.Decision_req })
  in
  Alcotest.(check bool) "held commit survives into recovery" true (st2.P.decided = Some true);
  Alcotest.(check bool) "asker answered commit" true
    (List.exists (fun (_, p) -> p = Wire.Decision_resp { committed = true }) (asends effs))

let prop_paxos_register_write_once =
  (* The register safety property: under any interleaving, reordering
     and dropping of messages, any number of inquiries, and crash+replay
     of any acceptor from its force-written log, at most one value is
     ever decided — by any acceptor, any log, or any DECISION-RESP. *)
  QCheck.Test.make ~name:"paxos register is write-once under crashes and reordering" ~count:500
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let n = pa.P.n in
      let machines = Array.init n (fun idx -> P.init ~gid:1 ~idx) in
      let lp = Array.make n 0 in
      let la = Array.make n None in
      let ld = Array.make n None in
      let pool = ref [] in
      let observed = ref [] in
      let apply_log i = function
        | P.R_promised { ballot } -> lp.(i) <- max lp.(i) ballot
        | P.R_accepted { ballot; committed } ->
            lp.(i) <- max lp.(i) ballot;
            la.(i) <- Some (ballot, committed)
        | P.R_decided { committed } -> ld.(i) <- Some committed
      in
      let interp i (eff : P.effect) =
        match eff with
        | T.Send { dst = Wire.Acceptor { idx; _ }; payload; _ } ->
            pool := (idx, acc_addr i, payload) :: !pool
        | T.Send { payload = Wire.Decision_resp { committed }; _ } ->
            observed := committed :: !observed
        | T.Send _ -> ()
        | T.Force_log r -> apply_log i r
        | T.Emit _ -> ()
        | T.Arm_timer _ | T.Cancel_timer _ | T.Ltm_call _ -> .
        | _ -> assert false
      in
      let feed i input =
        let st, effs = P.step pa machines.(i) input in
        machines.(i) <- st;
        List.iter (interp i) effs
      in
      (* Stimulus: the leader's ballot-0 commit proposal reaches a random
         subset of acceptors, and one or two in-doubt participants ask. *)
      for i = 0 to n - 1 do
        if Random.State.bool rng then
          pool := (i, Wire.Coordinator 1, Wire.Px_accept { ballot = 0; committed = true }) :: !pool
      done;
      pool := (Random.State.int rng n, Wire.Agent a, Wire.Decision_req) :: !pool;
      if Random.State.bool rng then
        pool := (Random.State.int rng n, Wire.Agent b, Wire.Decision_req) :: !pool;
      let rec take k = function
        | [] -> assert false
        | x :: r ->
            if k = 0 then (x, r)
            else
              let y, rest = take (k - 1) r in
              (y, x :: rest)
      in
      let steps = ref 0 in
      while !pool <> [] && !steps < 2_000 do
        incr steps;
        let (dst, src, payload), rest = take (Random.State.int rng (List.length !pool)) !pool in
        pool := rest;
        match Random.State.int rng 10 with
        | 0 -> () (* the network loses it *)
        | 1 ->
            (* a random acceptor crashes and replays its log first *)
            let i = Random.State.int rng n in
            machines.(i) <- P.init ~gid:1 ~idx:i;
            feed i (P.Recover { promised = lp.(i); accepted = la.(i); decided = ld.(i) });
            feed dst (P.Deliver { src; payload })
        | _ -> feed dst (P.Deliver { src; payload })
      done;
      let decided =
        List.filter_map Fun.id (Array.to_list ld)
        @ List.filter_map (fun (st : P.state) -> st.P.decided) (Array.to_list machines)
        @ !observed
      in
      match decided with [] -> true | v :: rest -> List.for_all (Bool.equal v) rest)

let test_acceptor_adapter_replays_its_log () =
  (* The effectful shell: promised ballot and accepted value are
     force-written as they change, and crash+recover rebuilds the
     machine from exactly that log. *)
  let engine = Engine.create () in
  let rng = Rng.create ~seed:1 in
  let net = Network.create ~engine ~rng ~config:Network.default_config () in
  let acc = Acceptor.create ~site:a ~engine ~net ~config:pcfg () in
  Acceptor.host acc ~gid:1 ~idx:0;
  Alcotest.(check int) "one instance hosted" 1 (Acceptor.n_hosted acc);
  let inbox = ref [] in
  Network.register net (Message.Acceptor { gid = 1; idx = 1 }) (fun m ->
      inbox := m.Message.payload :: !inbox);
  Network.register net (Message.Coordinator 1) (fun _ -> ());
  let send payload =
    Network.send net
      ~src:(Message.Acceptor { gid = 1; idx = 1 })
      ~dst:(Message.Acceptor { gid = 1; idx = 0 })
      ~gid:1 payload;
    Engine.run engine
  in
  send (Wire.Px_query { ballot = 3 });
  send (Wire.Px_accept { ballot = 3; committed = true });
  Alcotest.(check bool) "promise and acceptance forced" true (Acceptor.force_writes acc >= 2);
  Acceptor.crash acc;
  Acceptor.recover acc;
  inbox := [];
  (* A stale lower-ballot query after the reboot must be answered from
     the replayed log: promised 3, accepted (3, commit). *)
  send (Wire.Px_query { ballot = 1 });
  match !inbox with
  | [ Wire.Px_promise { ballot = 1; promised = 3; accepted = Some (3, true); idx = 0 } ] -> ()
  | _ -> Alcotest.fail "replayed acceptor did not answer from its force-written log"

(* ------------------------------------------------------------------ *)
(* The termination protocol on a reliable network (regression)          *)
(* ------------------------------------------------------------------ *)

let test_inquiry_arms_on_reliable_network () =
  (* Regression: the inquiry timer used to arm only when the network was
     lossy, so an in-doubt participant of a crashed coordinator on a
     perfectly reliable network blocked until the coordinator's reboot
     happened to retransmit. Coordinator crashes alone must arm it:
     crash T1's coordinator site the moment the remote participant is
     prepared, keep it down well past the inquiry interval, and the
     participant must inquire — with zero message loss. *)
  let obs = Obs.create () in
  let engine = Engine.create () in
  let rng = Rng.create ~seed:42 in
  let trace = Trace.create () in
  let dtm =
    Dtm.create ~engine ~rng ~trace ~net_config:Network.default_config ~certifier:Config.full
      ~obs ~crash_coordinators:true
      ~site_specs:[| Dtm.default_site_spec; Dtm.default_site_spec |]
      ()
  in
  List.iter (fun s -> Dtm.load dtm s ~table:"X" ~key:0 ~value:100) (Dtm.site_ids dtm);
  let outcome = ref None in
  ignore
    (Dtm.submit dtm
       (Program.make
          [ (a, Command.Update { table = "X"; key = 0; delta = 1 });
            (b, Command.Update { table = "X"; key = 0; delta = -1 }) ])
       ~on_done:(fun o -> outcome := Some o));
  (* T1's coordinator lives at site a: crash it as soon as site b's agent
     holds the prepared subtransaction, down for 4 inquiry intervals. *)
  let agent_b = Dtm.agent dtm b in
  let fired = ref false in
  let rec poll () =
    if not !fired then
      if Hermes_core.Agent.n_prepared agent_b > 0 then begin
        fired := true;
        Dtm.crash_site ~reboot_delay:(4 * Config.full.Config.decision_inquiry_interval) dtm a
      end
      else if Time.to_int (Engine.now engine) < 1_000_000 then
        Engine.schedule_unit engine ~delay:100 poll
  in
  Engine.schedule_unit engine ~delay:100 poll;
  Engine.run engine;
  Alcotest.(check bool) "caught the prepared window" true !fired;
  Alcotest.(check bool) "the transaction terminated" true (!outcome <> None);
  Alcotest.(check bool) "agents inquired without any message loss" true
    (Registry.sum_counter (Obs.metrics obs) "agent.inquiries" > 0)

(* ------------------------------------------------------------------ *)
(* The model checker on the replicated register                         *)
(* ------------------------------------------------------------------ *)

let kill_scenario ?(proto = Config.Paxos { f = 1 }) ~kills () =
  {
    Explore.default with
    Explore.n_txns = 1;
    config = { Explore.default.Explore.config with Config.commit_proto = proto };
    budgets = { Explore.no_faults with Explore.replica_kills = kills };
  }

let test_explore_paxos_f_kills_clean () =
  (* Non-blocking up to F: with f = 1, any single permanent leader or
     acceptor kill anywhere in the schedule leaves every in-doubt
     participant resolvable. *)
  check_clean "paxos 1 kill" (Explore.run (kill_scenario ~kills:1 ()))

let test_explore_paxos_f_plus_1_kills_block () =
  (* The availability boundary: F+1 = 2 permanent kills must rediscover
     a forever-blocked in-doubt participant (I5). *)
  let st = Explore.run (kill_scenario ~kills:2 ()) in
  Alcotest.(check bool) "exhausted" false st.Explore.truncated;
  Alcotest.(check bool) "violations found" true (st.Explore.n_violations > 0);
  Alcotest.(check bool) "an I5 counterexample is reported" true
    (List.exists
       (fun (msg, _) -> String.length msg >= 2 && String.sub msg 0 2 = "I5")
       st.Explore.violations)

let test_explore_backup_tm_single_kill_blocks () =
  (* Backup-TM survives no permanent replica failure (F = 0): one kill
     already blocks, which is exactly why Paxos Commit runs 2F+1. *)
  let st = Explore.run (kill_scenario ~proto:Config.Backup_tm ~kills:1 ()) in
  Alcotest.(check bool) "violations found" true (st.Explore.n_violations > 0)

(* ------------------------------------------------------------------ *)
(* The process-fault adversaries and their countermeasures              *)
(* ------------------------------------------------------------------ *)

let cfg_certs = { cfg with Config.decision_certificates = true }
let cfg_lying = { cfg with Config.adversary = { Config.no_adversary with Config.lying_sites = [ 0 ] } }
let cfg_drift = { cfg with Config.sn_drift_rejection = true; max_sn_drift = 100 }
let cfg_susp = { cfg with Config.suspicion_timeout = 7 }

let test_certified_vote () =
  (* With decision certificates on, the READY carries the prepare
     certificate (the force-written serial number). *)
  let _, effs = prepared ~cfg:cfg_certs ~sn:(mk_sn 0) (A.init ~site:a) in
  Alcotest.(check bool) "vote is certified" true
    (has_send effs (Wire.Ready_certified { sn = mk_sn 0 }));
  Alcotest.(check bool) "bare READY suppressed" true (not (has_send effs Wire.Ready))

let test_cert_gate_ignores_bare_commit () =
  (* A bare COMMIT at a prepared participant is an equivocating
     coordinator's forgery: noted, never obeyed. The certified decision
     then commits normally. *)
  let views = [ (1, v ()) ] in
  let st, _ = prepared ~cfg:cfg_certs ~sn:(mk_sn 0) (A.init ~site:a) in
  let st, effs = deliver ~cfg:cfg_certs ~env:(env ~views ()) st ~gid:1 Wire.Commit in
  Alcotest.(check bool) "equivocation detected" true
    (List.exists (function T.Emit (A.Ev_equivocation_detected { gid = 1 }) -> true | _ -> false) effs);
  Alcotest.(check bool) "no local commit on a bare decision" true
    (not (has_call effs (A.L_commit { gid = 1; inc = 0 })));
  Alcotest.(check bool) "no ack on a bare decision" true (sends effs = []);
  let _, effs =
    deliver ~cfg:cfg_certs ~env:(env ~views ()) st ~gid:1 (Wire.Commit_certified { voters = [ a; b ] })
  in
  Alcotest.(check bool) "certified COMMIT forces the record" true
    (has_log effs (A.R_commit { gid = 1 }));
  Alcotest.(check bool) "certified COMMIT commits locally" true
    (has_call effs (A.L_commit { gid = 1; inc = 0 }))

let test_cert_gate_ignores_bare_rollback () =
  let views = [ (1, v ()) ] in
  let st, _ = prepared ~cfg:cfg_certs ~sn:(mk_sn 0) (A.init ~site:a) in
  let st, effs = deliver ~cfg:cfg_certs ~env:(env ~views ()) st ~gid:1 Wire.Rollback in
  Alcotest.(check bool) "equivocation detected" true
    (List.exists (function T.Emit (A.Ev_equivocation_detected { gid = 1 }) -> true | _ -> false) effs);
  Alcotest.(check bool) "promise kept: no local abort" true
    (not (has_call effs (A.L_abort { gid = 1 })));
  let _, effs = deliver ~cfg:cfg_certs ~env:(env ~views ()) st ~gid:1 Wire.Rollback_certified in
  Alcotest.(check bool) "certified ROLLBACK aborts" true (has_call effs (A.L_abort { gid = 1 }));
  Alcotest.(check bool) "certified ROLLBACK acked" true (has_send effs Wire.Rollback_ack)

let test_drift_refusal () =
  (* The serial number's timestamp is 1000 ticks behind the agent's
     clock, beyond the 100-tick bound: refused outright, nothing
     prepared. Within the bound the same PREPARE certifies. *)
  let _, effs = prepared ~cfg:cfg_drift ~sn:(mk_sn 1) ~now:1000 (A.init ~site:a) in
  Alcotest.(check bool) "stale SN refused" true
    (has_send effs (Wire.Refuse Wire.Drift_refused));
  Alcotest.(check bool) "local abort" true (has_call effs (A.L_abort { gid = 1 }));
  let st, effs = prepared ~cfg:cfg_drift ~sn:(mk_sn 1) ~now:50 (A.init ~site:a) in
  Alcotest.(check bool) "fresh SN certifies" true (has_send effs Wire.Ready);
  Alcotest.(check int) "prepared" 1 (A.n_prepared st)

let test_lying_prepare_promises_nothing () =
  (* Vote denial: the liar answers READY with no certification pass, no
     force-written prepare record and no held-open locks — the promise
     evaporates at the first crash or replay. *)
  let st, effs = prepared ~cfg:cfg_lying ~sn:(mk_sn 0) (A.init ~site:a) in
  Alcotest.(check bool) "votes READY regardless" true (has_send effs Wire.Ready);
  Alcotest.(check bool) "nothing certified" true (verdict_of effs = None);
  Alcotest.(check bool) "no prepare record" true
    (not (has_log effs (A.R_prepare { gid = 1; sn = mk_sn 0 })));
  Alcotest.(check bool) "no held-open locks" true
    (not (has_call effs (A.L_hold_open { gid = 1 })));
  Alcotest.(check int) "no table entry" 0 (A.n_prepared st)

let test_suspicion_escalates () =
  (* A suspicion timeout bounds the in-doubt window even with the
     ordinary termination protocol disengaged (env.inquiry = false):
     the inquiry timer arms at prepare, and each firing counts a
     suspicion and asks for the decision. *)
  let st, effs = prepared ~cfg:cfg_susp ~sn:(mk_sn 0) (A.init ~site:a) in
  Alcotest.(check bool) "inquiry timer armed without env.inquiry" true
    (has_arm effs (A.T_inquiry 1));
  let _, effs =
    A.step cfg_susp st (A.Inquiry_fired { env = env ~now:7 ~views:[ (1, v ()) ] (); gid = 1 })
  in
  Alcotest.(check bool) "suspicion counted" true
    (List.exists (function T.Emit (A.Ev_suspicion { gid = 1 }) -> true | _ -> false) effs);
  Alcotest.(check bool) "asks for the decision" true (has_send effs Wire.Decision_req);
  Alcotest.(check bool) "re-arms" true (has_arm effs (A.T_inquiry 1))

let prop_zero_adversary_byte_identical =
  (* The effect-order contract: a config with every adversary knob at
     its zero value — and the drift guard enabled but vacuous — draws
     the same RNG stream, emits the same trace and counts the same
     metrics as the honest config, byte for byte, at any seed. *)
  QCheck.Test.make ~name:"zero adversary knobs are byte-identical to faults-off" ~count:8
    QCheck.(pair (int_bound 999) (int_range 10 30))
    (fun (seed, n_global) ->
      let zeroed =
        {
          Config.full with
          Config.adversary = { Config.lying_sites = []; equivocate = false; sn_drift = 0 };
          Config.sn_drift_rejection = true;
          max_sn_drift = 1_000_000_000;
        }
      in
      let dig config =
        run_digest
          {
            Driver.default_setup with
            Driver.protocol = Driver.Two_pca config;
            seed;
            spec =
              Spec.make ~n_global
                ~arrival:(Spec.Closed { mpl = 3; think_time_mean = Spec.think_time Spec.default })
                ();
          }
      in
      dig Config.full = dig zeroed)

(* The model checker against each adversary: undefended it rediscovers
   the violation; defended it exhausts clean. *)

let violation_with_prefix (st : Explore.stats) p =
  List.exists
    (fun (msg, _) -> String.length msg >= String.length p && String.sub msg 0 (String.length p) = p)
    st.Explore.violations

let lying_scenario ~defended =
  let config =
    {
      Explore.default.Explore.config with
      Config.adversary = { Config.no_adversary with Config.lying_sites = [ 1 ] };
      Config.decision_certificates = defended;
    }
  in
  { Explore.default with Explore.config; budgets = Explore.no_faults }

let test_explore_vote_denial_violates () =
  (* The liar's bare READY completes the quorum and the transaction
     globally commits with no durable promise behind site b's vote:
     I2 (decision soundness) must find it. *)
  let st = Explore.run (lying_scenario ~defended:false) in
  Alcotest.(check bool) "exhausted" false st.Explore.truncated;
  Alcotest.(check bool) "an I2 counterexample is reported" true (violation_with_prefix st "I2")

let test_explore_vote_denial_defended_clean () =
  (* Prepare certificates: the liar cannot certify a promise it never
     logged, so its bare READY no longer counts towards the quorum. *)
  check_clean "lying + certificates" (Explore.run (lying_scenario ~defended:true))

let equivocation_scenario ~defended =
  let config =
    {
      Explore.default.Explore.config with
      Config.adversary = { Config.no_adversary with Config.equivocate = true };
    }
  in
  let config =
    if defended then
      { config with Config.decision_certificates = true; Config.suspicion_timeout = 5 }
    else config
  in
  {
    Explore.default with
    Explore.n_txns = 1;
    config;
    budgets =
      (if defended then { Explore.no_faults with Explore.inquiries = 1; retransmits = 1 }
       else Explore.no_faults);
  }

let test_explore_equivocation_violates () =
  (* COMMIT to half the participants, bare ROLLBACK to the rest: I4
     (decision agreement) must catch the split. *)
  let st = Explore.run (equivocation_scenario ~defended:false) in
  Alcotest.(check bool) "exhausted" false st.Explore.truncated;
  Alcotest.(check bool) "an I4 counterexample is reported" true (violation_with_prefix st "I4")

let test_explore_equivocation_defended_clean () =
  (* Certificates make the forged branch inert and the suspicion timeout
     lets the starved half resolve through the decision log. *)
  check_clean "equivocation + certificates + suspicion"
    (Explore.run (equivocation_scenario ~defended:true))

let drift_scenario ~defended =
  let config =
    {
      Config.without_extension with
      Config.bind_data = false;
      Config.adversary = { Config.no_adversary with Config.sn_drift = 1_000 };
      Config.max_sn_drift = 100;
      Config.sn_drift_rejection = defended;
    }
  in
  {
    Explore.default with
    Explore.config = config;
    budgets = { Explore.no_faults with Explore.commit_retries = 2 };
  }

let test_explore_sn_drift_violates () =
  (* A stale-clock coordinator slots an even gid's commit below serial
     numbers the other site already released; without §5.3's extension
     check the certified order goes non-serializable (I3). *)
  let st = Explore.run (drift_scenario ~defended:false) in
  Alcotest.(check bool) "exhausted" false st.Explore.truncated;
  Alcotest.(check bool) "an I3 counterexample is reported" true (violation_with_prefix st "I3")

let test_explore_sn_drift_defended_clean () =
  (* The drift bound refuses the stale PREPARE before certification. *)
  check_clean "sn drift + rejection" (Explore.run (drift_scenario ~defended:true))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "protocol"
    [
      ( "golden",
        [
          Alcotest.test_case "e1 table byte-identical" `Slow test_golden_e1;
          Alcotest.test_case "e5-style run byte-identical" `Slow test_golden_e5;
          Alcotest.test_case "e5 ticket run byte-identical" `Slow test_golden_e5_ticket;
          Alcotest.test_case "e13-style faulty run byte-identical" `Slow test_golden_e13;
          Alcotest.test_case "e13 multi-interval run byte-identical" `Slow test_golden_e13_multi_interval;
        ] );
      ( "agent-prepare",
        [
          Alcotest.test_case "certifies and votes READY" `Quick test_prepare_ready;
          Alcotest.test_case "extension refusal (5.3)" `Quick test_prepare_extension_refused;
          Alcotest.test_case "interval refusal (4.2)" `Quick test_prepare_interval_refused;
          Alcotest.test_case "refresh saves an alive neighbour" `Quick test_prepare_refresh_saves_alive_neighbour;
          Alcotest.test_case "dead refusal (CI 2)" `Quick test_prepare_dead_refused;
          Alcotest.test_case "duplicate PREPARE re-votes" `Quick test_prepare_duplicate_revotes;
        ] );
      ( "agent-alive",
        [
          Alcotest.test_case "alive check extends the interval" `Quick test_alive_check_extends_interval;
          Alcotest.test_case "dead subtransaction resubmits" `Quick test_alive_check_triggers_resubmission;
          Alcotest.test_case "step is pure" `Quick test_step_is_pure;
        ] );
      ( "agent-commit",
        [
          Alcotest.test_case "commit certification delays and releases" `Quick
            test_commit_certification_delays_and_releases;
          Alcotest.test_case "COMMIT for unknown gid trips the machine" `Quick
            test_commit_unknown_uncommitted_fails;
        ] );
      ( "paxos-register",
        [
          Alcotest.test_case "commit waits for a write quorum" `Quick test_paxos_commit_waits_for_write_quorum;
          Alcotest.test_case "preparing leader adopts a register abort" `Quick
            test_paxos_coordinator_adopts_register_abort_in_preparing;
          Alcotest.test_case "recovery adopts the accepted value" `Quick test_paxos_recovery_adopts_accepted_value;
          Alcotest.test_case "recovery presumes abort on an empty register" `Quick
            test_paxos_recovery_presumes_abort_when_register_empty;
          Alcotest.test_case "nacked leader re-bids above the nack" `Quick
            test_paxos_nacked_leader_rebids_above_the_nack;
          Alcotest.test_case "backup-TM register decides alone" `Quick test_backup_tm_register_decides_alone;
          Alcotest.test_case "acceptor adapter replays its log" `Quick test_acceptor_adapter_replays_its_log;
          QCheck_alcotest.to_alcotest prop_paxos_register_write_once;
        ] );
      ( "agent-termination",
        [
          Alcotest.test_case "prepare arms the inquiry timer" `Quick test_inquiry_armed_on_prepare;
          Alcotest.test_case "inquiry sends DECISION-REQ and re-arms" `Quick
            test_inquiry_fires_sends_decision_req;
          Alcotest.test_case "DECISION-RESP commit" `Quick test_decision_resp_translates_to_commit;
          Alcotest.test_case "DECISION-RESP rollback" `Quick test_decision_resp_translates_to_rollback;
          Alcotest.test_case "recovery replay commits exactly once" `Quick
            test_recovery_replay_commits_once;
          Alcotest.test_case "undecided recovery re-arms the inquiry" `Quick
            test_recovery_undecided_rearms_inquiry;
        ] );
      ( "coordinator",
        [
          Alcotest.test_case "start broadcasts and executes" `Quick test_coordinator_happy_path;
          Alcotest.test_case "commit needs votes from every site" `Quick
            test_coordinator_commit_requires_both_votes;
          Alcotest.test_case "counted quorum falls to duplicate READY" `Quick
            test_coordinator_counted_quorum_bug;
          Alcotest.test_case "refusal aborts" `Quick test_coordinator_refusal_aborts;
          Alcotest.test_case "exec timeout aborts" `Quick test_coordinator_exec_timeout_aborts;
        ] );
      ( "coordinator-recovery",
        [
          Alcotest.test_case "force-log records at begin/prepared/decide" `Quick
            test_coordinator_force_log_records;
          Alcotest.test_case "recovery re-drives a logged COMMIT" `Quick
            test_coordinator_crash_then_recover_redrives_commit;
          Alcotest.test_case "no decision record: presumed abort" `Quick
            test_coordinator_recover_presumes_abort;
          Alcotest.test_case "DECISION-REQ answered once decided" `Quick
            test_coordinator_answers_decision_req;
        ] );
      ( "explore",
        [
          Alcotest.test_case "2x2 reorderings exhaust clean" `Slow test_explore_reorderings_clean;
          Alcotest.test_case "2x1 fault mix exhausts clean" `Slow test_explore_faults_clean;
          Alcotest.test_case "2x1 lossy network exhausts clean" `Slow test_explore_losses_clean;
          Alcotest.test_case "fake quorum rediscovered under Counted" `Quick test_explore_finds_fake_quorum;
          Alcotest.test_case "dedup quorum survives the same adversary" `Quick
            test_explore_dedup_quorum_clean;
          Alcotest.test_case "coordinator crash + termination exhausts clean" `Slow
            test_explore_coord_crash_clean;
          Alcotest.test_case "ablated termination blocks forever (I5)" `Slow
            test_explore_no_termination_blocks_forever;
          Alcotest.test_case "paxos f=1 survives F kills" `Slow test_explore_paxos_f_kills_clean;
          Alcotest.test_case "paxos f=1 blocks at F+1 kills (I5)" `Slow
            test_explore_paxos_f_plus_1_kills_block;
          Alcotest.test_case "backup-TM blocks at one kill (I5)" `Quick
            test_explore_backup_tm_single_kill_blocks;
          Alcotest.test_case "online reconfigure + handover exhausts clean" `Slow
            test_explore_reconfigure_clean;
          Alcotest.test_case "ablated handover certifies unsoundly (I6)" `Slow
            test_explore_no_handover_unsound;
        ] );
      ( "adversary",
        [
          Alcotest.test_case "certified vote carries the prepare SN" `Quick test_certified_vote;
          Alcotest.test_case "bare COMMIT ignored at a prepared participant" `Quick
            test_cert_gate_ignores_bare_commit;
          Alcotest.test_case "bare ROLLBACK ignored at a prepared participant" `Quick
            test_cert_gate_ignores_bare_rollback;
          Alcotest.test_case "stale SN refused beyond the drift bound" `Quick test_drift_refusal;
          Alcotest.test_case "lying agent promises nothing durable" `Quick
            test_lying_prepare_promises_nothing;
          Alcotest.test_case "suspicion timeout escalates to inquiry" `Quick
            test_suspicion_escalates;
          QCheck_alcotest.to_alcotest prop_zero_adversary_byte_identical;
        ] );
      ( "adversary-explore",
        [
          Alcotest.test_case "vote denial rediscovered (I2)" `Slow test_explore_vote_denial_violates;
          Alcotest.test_case "certificates survive vote denial" `Slow
            test_explore_vote_denial_defended_clean;
          Alcotest.test_case "equivocation rediscovered (I4)" `Quick test_explore_equivocation_violates;
          Alcotest.test_case "certificates + suspicion survive equivocation" `Slow
            test_explore_equivocation_defended_clean;
          Alcotest.test_case "SN drift rediscovered (I3)" `Slow test_explore_sn_drift_violates;
          Alcotest.test_case "drift rejection survives the stale clock" `Slow
            test_explore_sn_drift_defended_clean;
        ] );
      ( "termination-reliable",
        [
          Alcotest.test_case "inquiry arms without message loss" `Slow
            test_inquiry_arms_on_reliable_network;
        ] );
      ( "timer-hygiene",
        [
          Alcotest.test_case "quiesced run leaves no live timers" `Quick test_quiesced_no_live_timers;
          Alcotest.test_case "quiesced run (duplicating network)" `Quick
            test_quiesced_no_live_timers_dup_network;
        ] );
      ( "group-commit",
        [
          Alcotest.test_case "PREPAREs buffer until the flush" `Quick
            test_gc_prepare_buffers_until_flush;
          Alcotest.test_case "max_batch fill forces inline" `Quick test_gc_max_batch_forces_inline;
          Alcotest.test_case "decision staged until the flush" `Quick
            test_gc_decision_staged_until_flush;
          Alcotest.test_case "crash loses staged state" `Quick test_gc_crash_loses_staged_state;
          QCheck_alcotest.to_alcotest prop_gc_batched_equals_sequential;
          Alcotest.test_case "e2e forces drop to ~1 per batch" `Quick test_gc_forces_drop_per_batch;
          Alcotest.test_case "batched run digest deterministic" `Quick
            test_gc_run_digest_deterministic;
          Alcotest.test_case "2x2 batched exploration exhausts clean" `Slow
            test_explore_group_commit_clean;
        ] );
    ]

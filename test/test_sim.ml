(* Tests for hermes.sim: the leftist-heap priority queue and the
   discrete-event engine (ordering, determinism, timers, cancellation). *)

open Hermes_kernel
module Engine = Hermes_sim.Engine

module Q = Hermes_sim.Pqueue.Make (struct
  type t = int

  let compare = Int.compare
end)

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)
(* ------------------------------------------------------------------ *)

let test_pq_basic () =
  let q = Q.of_list [ 5; 1; 4; 1; 3 ] in
  Alcotest.(check int) "size" 5 (Q.size q);
  Alcotest.(check (option int)) "min" (Some 1) (Q.min q);
  Alcotest.(check (list int)) "sorted drain" [ 1; 1; 3; 4; 5 ] (Q.to_sorted_list q)

let test_pq_empty () =
  Alcotest.(check bool) "empty" true (Q.is_empty Q.empty);
  Alcotest.(check (option int)) "min of empty" None (Q.min Q.empty);
  Alcotest.(check bool) "pop of empty" true (Q.pop Q.empty = None)

let prop_pq_sorts =
  QCheck.Test.make ~name:"pqueue drains in sorted order" ~count:300
    QCheck.(list int)
    (fun xs -> Q.to_sorted_list (Q.of_list xs) = List.sort Int.compare xs)

let prop_pq_size =
  QCheck.Test.make ~name:"pqueue size tracks inserts" ~count:300
    QCheck.(list int)
    (fun xs -> Q.size (Q.of_list xs) = List.length xs)

let prop_pq_persistent =
  QCheck.Test.make ~name:"pqueue is persistent (pop does not mutate)" ~count:100
    QCheck.(list int)
    (fun xs ->
      QCheck.assume (xs <> []);
      let q = Q.of_list xs in
      let _ = Q.pop q in
      Q.size q = List.length xs)

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_engine_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_unit e ~delay:30 (fun () -> log := 30 :: !log);
  Engine.schedule_unit e ~delay:10 (fun () -> log := 10 :: !log);
  Engine.schedule_unit e ~delay:20 (fun () -> log := 20 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "time order" [ 10; 20; 30 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 30 (Time.to_int (Engine.now e))

let test_engine_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Engine.schedule_unit e ~delay:5 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "scheduling order breaks ties" (List.init 10 Fun.id) (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_unit e ~delay:10 (fun () ->
      log := "a" :: !log;
      Engine.schedule_unit e ~delay:5 (fun () -> log := "c" :: !log);
      Engine.schedule_unit e ~delay:0 (fun () -> log := "b" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "final time" 15 (Time.to_int (Engine.now e))

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let t = Engine.schedule e ~delay:10 (fun () -> fired := true) in
  Engine.schedule_unit e ~delay:5 (fun () -> Engine.cancel t);
  Engine.run e;
  Alcotest.(check bool) "cancelled timer does not fire" false !fired

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    Engine.schedule_unit e ~delay:10 tick
  in
  Engine.schedule_unit e ~delay:10 tick;
  Engine.run ~until:(Time.of_int 100) e;
  Alcotest.(check int) "ten ticks" 10 !count;
  Alcotest.(check int) "clock advanced to limit" 100 (Time.to_int (Engine.now e))

let test_engine_halt () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    Engine.schedule_unit e ~delay:10 (fun () ->
        incr count;
        if !count = 3 then Engine.halt e)
  done;
  Engine.run e;
  Alcotest.(check int) "halted after third" 3 !count

let test_engine_negative_delay () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule_unit e ~delay:(-1) (fun () -> ()))

let test_engine_livelock_guard () =
  let e = Engine.create () in
  let rec spin () = Engine.schedule_unit e ~delay:0 spin in
  Engine.schedule_unit e ~delay:0 spin;
  Alcotest.(check bool) "raises Stuck" true
    (try
       Engine.run ~max_events:1000 e;
       false
     with Engine.Stuck _ -> true)

let test_engine_stats () =
  let e = Engine.create () in
  let t = Engine.schedule e ~delay:10 (fun () -> Alcotest.fail "cancelled timer fired") in
  Engine.schedule_unit e ~delay:5 (fun () -> Engine.cancel t);
  Engine.schedule_unit e ~delay:20 (fun () -> Engine.schedule_unit e ~delay:1 (fun () -> ()));
  Engine.run e;
  let s = Engine.stats e in
  (* The cancelled timer pops from the queue but only counts as
     [cancelled], never as an executed event. *)
  Alcotest.(check int) "executed" 3 s.Engine.events;
  Alcotest.(check int) "cancelled" 1 s.Engine.cancelled;
  Alcotest.(check int) "high-water pending" 3 s.Engine.max_pending;
  Alcotest.(check int) "quiesced queue is empty" 0 s.Engine.live

let prop_engine_deterministic =
  QCheck.Test.make ~name:"same schedule, same execution order" ~count:100
    QCheck.(list (int_bound 50))
    (fun delays ->
      let exec delays =
        let e = Engine.create () in
        let log = ref [] in
        List.iteri (fun i d -> Engine.schedule_unit e ~delay:d (fun () -> log := i :: !log)) delays;
        Engine.run e;
        List.rev !log
      in
      exec delays = exec delays)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "sim"
    [
      ( "pqueue",
        [
          Alcotest.test_case "basics" `Quick test_pq_basic;
          Alcotest.test_case "empty" `Quick test_pq_empty;
          q prop_pq_sorts;
          q prop_pq_size;
          q prop_pq_persistent;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time order" `Quick test_engine_order;
          Alcotest.test_case "tie-break by scheduling order" `Quick test_engine_fifo_ties;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "cancellation" `Quick test_engine_cancel;
          Alcotest.test_case "run until" `Quick test_engine_until;
          Alcotest.test_case "halt" `Quick test_engine_halt;
          Alcotest.test_case "negative delay rejected" `Quick test_engine_negative_delay;
          Alcotest.test_case "livelock guard" `Quick test_engine_livelock_guard;
          Alcotest.test_case "stats" `Quick test_engine_stats;
          q prop_engine_deterministic;
        ] );
    ]

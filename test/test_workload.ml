(* Tests for hermes.workload: Zipf sampling, program generation, stats and
   the end-to-end driver. *)

open Hermes_kernel
open Hermes_workload
module Config = Hermes_core.Config
module Program = Hermes_core.Program
module Failure = Hermes_ltm.Failure
module Cgm = Hermes_baselines.Cgm
module Committed = Hermes_history.Committed
module Anomaly = Hermes_history.Anomaly

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)
(* ------------------------------------------------------------------ *)

let test_zipf_bounds () =
  let z = Zipf.create ~n:10 ~theta:0.9 in
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let k = Zipf.sample z rng in
    if k < 0 || k >= 10 then Alcotest.failf "out of bounds: %d" k
  done

let test_zipf_skew () =
  let z = Zipf.create ~n:10 ~theta:1.2 in
  let rng = Rng.create ~seed:2 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let k = Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "key 0 hottest" true (counts.(0) > counts.(5));
  Alcotest.(check bool) "markedly so" true (counts.(0) > 3 * counts.(9))

let test_zipf_uniform () =
  let z = Zipf.create ~n:4 ~theta:0.0 in
  let rng = Rng.create ~seed:3 in
  let counts = Array.make 4 0 in
  for _ = 1 to 8_000 do
    let k = Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 1_500 && c < 2_500))
    counts

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf stays in range" ~count:200
    QCheck.(triple (int_range 1 50) (int_bound 1000) (int_bound 20))
    (fun (n, seed, theta10) ->
      let z = Zipf.create ~n ~theta:(float_of_int theta10 /. 10.0) in
      let rng = Rng.create ~seed in
      let k = Zipf.sample z rng in
      0 <= k && k < n)

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let spec = { Spec.default with Spec.n_sites = 4; sites_per_txn = 2; ops_per_site = 3 }

let test_generator_distinct_sites () =
  let gen = Generator.create ~spec ~rng:(Rng.create ~seed:5) in
  for _ = 1 to 50 do
    let p = Generator.global_program gen in
    let sites = Program.sites p in
    Alcotest.(check int) "two sites" 2 (List.length sites);
    Alcotest.(check int) "distinct" 2 (List.length (List.sort_uniq Site.compare sites))
  done

let test_generator_no_upgrades () =
  (* Within one site's command list, no key is both read (by a select or a
     range scan) and updated — the upgrade-deadlock trap. *)
  let gen = Generator.create ~spec ~rng:(Rng.create ~seed:6) in
  for _ = 1 to 200 do
    let p = Generator.global_program gen in
    List.iter
      (fun site ->
        let cmds = Program.commands_at p site in
        let read_keys =
          List.concat_map
            (function
              | Command.Select { table; keys } -> List.map (fun k -> (table, k)) keys
              | Command.Select_range { table; lo; hi } -> List.init (hi - lo + 1) (fun i -> (table, lo + i))
              | _ -> [])
            cmds
        in
        let write_keys =
          List.filter_map
            (function Command.Update { table; key; _ } -> Some (table, key) | _ -> None)
            cmds
        in
        Alcotest.(check int) "distinct write targets"
          (List.length write_keys)
          (List.length (List.sort_uniq compare write_keys));
        List.iter
          (fun wk ->
            Alcotest.(check bool)
              (Fmt.str "written key %s/%d never read first" (fst wk) (snd wk))
              false
              (List.exists (( = ) wk) read_keys))
          write_keys)
      (Program.sites p)
  done

let test_generator_partitioned_locals () =
  let gen = Generator.create ~spec:{ spec with Spec.local_write_ratio = 1.0 } ~rng:(Rng.create ~seed:7) in
  for _ = 1 to 50 do
    List.iter
      (function
        | Command.Update { table; _ } ->
            Alcotest.(check string) "writes confined" Generator.local_partition_table table
        | Command.Select _ -> ()
        | c -> Alcotest.failf "unexpected %a" Command.pp c)
      (Generator.local_commands ~partitioned:true gen)
  done

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_latency_summary () =
  let s = Stats.create () in
  List.iter
    (fun l -> Stats.record_latency s ~started:Time.zero ~finished:(Time.of_int l))
    [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ];
  let sum = Stats.latency_summary s in
  Alcotest.(check bool) "mean" true (abs_float (sum.Stats.mean -. 55.0) < 0.001);
  (* The histogram reports bucket upper bounds: the p50 sample (60) lands
     in the [32, 63] bucket. The extrema stay exact. *)
  Alcotest.(check int) "p50" 63 sum.Stats.p50;
  Alcotest.(check int) "max" 100 sum.Stats.max

let test_abort_rate () =
  let s = Stats.create () in
  for _ = 1 to 10 do
    Stats.note_attempt s
  done;
  for _ = 1 to 8 do
    Stats.note_committed s
  done;
  Alcotest.(check bool) "rate" true (abs_float (Stats.abort_rate s -. 0.2) < 0.001)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let test_driver_completes_quota () =
  let r =
    Driver.run
      { Driver.default_setup with Driver.spec = { Spec.default with Spec.n_global = 30 }; seed = 9 }
  in
  Alcotest.(check int) "quota done" 30 (Stats.committed r.Driver.stats + Stats.aborted_final r.Driver.stats);
  Alcotest.(check int) "nothing stuck" 0 r.Driver.stuck;
  Alcotest.(check bool) "failure-free: all commit" true (Stats.committed r.Driver.stats = 30)

let test_driver_deterministic () =
  let setup = { Driver.default_setup with Driver.failure = Failure.prepared_rate 0.2; seed = 12 } in
  let r1 = Driver.run setup and r2 = Driver.run setup in
  Alcotest.(check int) "same commits" (Stats.committed r1.Driver.stats) (Stats.committed r2.Driver.stats);
  Alcotest.(check int) "same events" r1.Driver.events r2.Driver.events;
  Alcotest.(check int) "same sim time" r1.Driver.sim_ticks r2.Driver.sim_ticks

let test_driver_full_certifier_clean_under_failures () =
  let r =
    Driver.run
      {
        Driver.default_setup with
        Driver.failure = Failure.prepared_rate 0.3;
        seed = 13;
        spec = { Spec.default with Spec.n_global = 60; zipf_theta = 0.9; keys_per_site = 10 };
      }
  in
  let c = Committed.extended r.Driver.history in
  Alcotest.(check bool) "resubmissions happened" true (r.Driver.totals.Hermes_core.Dtm.resubmissions > 0);
  Alcotest.(check (list string)) "no distortions" []
    (List.map (Fmt.str "%a" Anomaly.pp_global) (Anomaly.global_view_distortions c));
  Alcotest.(check bool) "CG acyclic" true (Anomaly.commit_order_cycle c = None)

let test_driver_cgm_protocol () =
  let r =
    Driver.run
      {
        Driver.default_setup with
        Driver.protocol = Driver.Cgm_baseline Cgm.default_config;
        seed = 14;
        spec = { Spec.default with Spec.n_global = 30 };
      }
  in
  Alcotest.(check int) "all commit" 30 (Stats.committed r.Driver.stats);
  Alcotest.(check bool) "cgm stats present" true (r.Driver.cgm <> None)

let test_driver_local_cap () =
  let r =
    Driver.run
      {
        Driver.default_setup with
        Driver.seed = 15;
        spec = { Spec.default with Spec.n_global = 20; local_mpl_per_site = 4; local_txn_cap = 25 };
      }
  in
  let locals = Stats.local_committed r.Driver.stats + Stats.local_aborted r.Driver.stats in
  Alcotest.(check bool) "cap respected" true (locals <= 25)

let test_protocol_names () =
  Alcotest.(check string) "2cm" "2CM" (Driver.protocol_name (Driver.Two_pca Config.full));
  Alcotest.(check string) "naive" "naive" (Driver.protocol_name (Driver.Two_pca Config.naive));
  Alcotest.(check string) "ticket" "ticket" (Driver.protocol_name (Driver.Two_pca Config.ticket));
  Alcotest.(check string) "cgm" "CGM-site" (Driver.protocol_name (Driver.Cgm_baseline Cgm.default_config))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "bounds" `Quick test_zipf_bounds;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "uniform" `Quick test_zipf_uniform;
          q prop_zipf_in_range;
        ] );
      ( "generator",
        [
          Alcotest.test_case "distinct sites" `Quick test_generator_distinct_sites;
          Alcotest.test_case "no upgrade patterns" `Quick test_generator_no_upgrades;
          Alcotest.test_case "partitioned locals" `Quick test_generator_partitioned_locals;
        ] );
      ( "stats",
        [
          Alcotest.test_case "latency summary" `Quick test_latency_summary;
          Alcotest.test_case "abort rate" `Quick test_abort_rate;
        ] );
      ( "driver",
        [
          Alcotest.test_case "completes quota" `Quick test_driver_completes_quota;
          Alcotest.test_case "deterministic" `Quick test_driver_deterministic;
          Alcotest.test_case "clean under failures" `Quick test_driver_full_certifier_clean_under_failures;
          Alcotest.test_case "CGM protocol" `Quick test_driver_cgm_protocol;
          Alcotest.test_case "local cap" `Quick test_driver_local_cap;
          Alcotest.test_case "protocol names" `Quick test_protocol_names;
        ] );
    ]

(* Tests for hermes.workload: Zipf sampling, program generation, stats and
   the end-to-end driver. *)

open Hermes_kernel
open Hermes_workload
module Config = Hermes_core.Config
module Program = Hermes_core.Program
module Failure = Hermes_ltm.Failure
module Cgm = Hermes_baselines.Cgm
module Committed = Hermes_history.Committed
module Anomaly = Hermes_history.Anomaly

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)
(* ------------------------------------------------------------------ *)

let test_zipf_bounds () =
  let z = Zipf.create ~n:10 ~theta:0.9 in
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let k = Zipf.sample z rng in
    if k < 0 || k >= 10 then Alcotest.failf "out of bounds: %d" k
  done

let test_zipf_skew () =
  let z = Zipf.create ~n:10 ~theta:1.2 in
  let rng = Rng.create ~seed:2 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let k = Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "key 0 hottest" true (counts.(0) > counts.(5));
  Alcotest.(check bool) "markedly so" true (counts.(0) > 3 * counts.(9))

let test_zipf_uniform () =
  let z = Zipf.create ~n:4 ~theta:0.0 in
  let rng = Rng.create ~seed:3 in
  let counts = Array.make 4 0 in
  for _ = 1 to 8_000 do
    let k = Zipf.sample z rng in
    counts.(k) <- counts.(k) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 1_500 && c < 2_500))
    counts

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf stays in range" ~count:200
    QCheck.(triple (int_range 1 50) (int_bound 1000) (int_bound 20))
    (fun (n, seed, theta10) ->
      let z = Zipf.create ~n ~theta:(float_of_int theta10 /. 10.0) in
      let rng = Rng.create ~seed in
      let k = Zipf.sample z rng in
      0 <= k && k < n)

(* ------------------------------------------------------------------ *)
(* Generator                                                           *)
(* ------------------------------------------------------------------ *)

let spec =
  Spec.make ~n_sites:4 ~mix:{ Spec.sites_per_txn = 2; ops_per_site = 3; write_ratio = 0.5 } ()

let test_generator_distinct_sites () =
  let gen = Generator.create ~spec ~rng:(Rng.create ~seed:5) in
  for _ = 1 to 50 do
    let p = Generator.global_program gen in
    let sites = Program.sites p in
    Alcotest.(check int) "two sites" 2 (List.length sites);
    Alcotest.(check int) "distinct" 2 (List.length (List.sort_uniq Site.compare sites))
  done

let test_generator_no_upgrades () =
  (* Within one site's command list, no key is both read (by a select or a
     range scan) and updated — the upgrade-deadlock trap. *)
  let gen = Generator.create ~spec ~rng:(Rng.create ~seed:6) in
  for _ = 1 to 200 do
    let p = Generator.global_program gen in
    List.iter
      (fun site ->
        let cmds = Program.commands_at p site in
        let read_keys =
          List.concat_map
            (function
              | Command.Select { table; keys } -> List.map (fun k -> (table, k)) keys
              | Command.Select_range { table; lo; hi } -> List.init (hi - lo + 1) (fun i -> (table, lo + i))
              | _ -> [])
            cmds
        in
        let write_keys =
          List.filter_map
            (function Command.Update { table; key; _ } -> Some (table, key) | _ -> None)
            cmds
        in
        Alcotest.(check int) "distinct write targets"
          (List.length write_keys)
          (List.length (List.sort_uniq compare write_keys));
        List.iter
          (fun wk ->
            Alcotest.(check bool)
              (Fmt.str "written key %s/%d never read first" (fst wk) (snd wk))
              false
              (List.exists (( = ) wk) read_keys))
          write_keys)
      (Program.sites p)
  done

let test_generator_partitioned_locals () =
  let gen = Generator.create ~spec:{ spec with Spec.local_write_ratio = 1.0 } ~rng:(Rng.create ~seed:7) in
  for _ = 1 to 50 do
    List.iter
      (function
        | Command.Update { table; _ } ->
            Alcotest.(check string) "writes confined" Generator.local_partition_table table
        | Command.Select _ -> ()
        | c -> Alcotest.failf "unexpected %a" Command.pp c)
      (Generator.local_commands ~partitioned:true gen)
  done

(* ------------------------------------------------------------------ *)
(* Spec: the builder API (the flat-field shim is gone)                  *)
(* ------------------------------------------------------------------ *)

let test_spec_builder () =
  let s =
    Spec.make
      ~arrival:(Spec.Closed { mpl = 7; think_time_mean = 123 })
      ~key_dist:(Spec.Zipf { theta = 0.8 })
      ~mix:{ Spec.sites_per_txn = 3; ops_per_site = 4; write_ratio = 0.25 }
      ()
  in
  (match s.Spec.arrival with
  | Spec.Closed { mpl; think_time_mean } ->
      Alcotest.(check int) "mpl kept" 7 mpl;
      Alcotest.(check int) "think time kept" 123 think_time_mean
  | Spec.Open _ -> Alcotest.fail "expected Closed");
  Alcotest.(check int) "think_time view" 123 (Spec.think_time s);
  (match s.Spec.key_dist with
  | Spec.Zipf { theta } -> Alcotest.(check (float 0.0)) "theta kept" 0.8 theta
  | _ -> Alcotest.fail "expected Zipf");
  Alcotest.(check int) "mix sites kept" 3 s.Spec.mix.Spec.sites_per_txn;
  Alcotest.(check int) "mix ops kept" 4 s.Spec.mix.Spec.ops_per_site;
  Alcotest.(check (float 0.0)) "mix write ratio kept" 0.25 s.Spec.mix.Spec.write_ratio

let test_spec_open_loop () =
  let o =
    Spec.make ~arrival:(Spec.Open { rate = 500.0; max_in_flight = 64 }) ~key_dist:Spec.Uniform ()
  in
  (match o.Spec.arrival with
  | Spec.Open { rate; max_in_flight } ->
      Alcotest.(check (float 0.0)) "rate kept" 500.0 rate;
      Alcotest.(check int) "cap kept" 64 max_in_flight
  | Spec.Closed _ -> Alcotest.fail "expected Open");
  (* open loops pace retries/locals with the default think time *)
  Alcotest.(check int) "default think time" (Spec.think_time Spec.default) (Spec.think_time o)

let test_spec_shards_default () =
  (* [n_shards] defaults to one shard per site — the static identity
     placement every pre-placement run used implicitly. *)
  let s = Spec.make ~n_sites:5 () in
  Alcotest.(check int) "default shards = sites" 5 (Spec.shards s);
  let sharded = Spec.make ~n_sites:4 ~n_shards:16 () in
  Alcotest.(check int) "explicit shard count kept" 16 (Spec.shards sharded)

(* ------------------------------------------------------------------ *)
(* Key distributions and the local long tail                            *)
(* ------------------------------------------------------------------ *)

let test_generator_hotspot_keys () =
  let spec =
    Spec.make ~n_sites:4 ~keys_per_site:100
      ~key_dist:(Spec.Hotspot { fraction = 0.1; weight = 0.9 })
      ()
  in
  let gen = Generator.create ~spec ~rng:(Rng.create ~seed:8) in
  let total = ref 0 and hot = ref 0 in
  for _ = 1 to 300 do
    let p = Generator.global_program gen in
    List.iter
      (fun site ->
        List.iter
          (function
            | Command.Update { key; _ } ->
                incr total;
                if key < 10 then incr hot
            | _ -> ())
          (Program.commands_at p site))
      (Program.sites p)
  done;
  Alcotest.(check bool) "hot tenth dominates" true
    (float_of_int !hot > 0.6 *. float_of_int !total);
  Alcotest.(check bool) "cold keys still drawn" true (!hot < !total)

let test_generator_uniform_keys_in_range () =
  let spec = Spec.make ~keys_per_site:16 ~key_dist:Spec.Uniform () in
  let gen = Generator.create ~spec ~rng:(Rng.create ~seed:11) in
  for _ = 1 to 100 do
    let p = Generator.global_program gen in
    List.iter
      (fun site ->
        List.iter
          (function
            | Command.Update { key; _ } ->
                Alcotest.(check bool) "in range" true (0 <= key && key < 16)
            | _ -> ())
          (Program.commands_at p site))
      (Program.sites p)
  done

let test_generator_long_tail_locals () =
  (* With a certain long tail every local txn runs 8x the ops; with the
     feature off the legacy length is untouched. *)
  let tailed = Spec.make ~local_ops:2 ~local_long_tail:1.0 () in
  let gen = Generator.create ~spec:tailed ~rng:(Rng.create ~seed:12) in
  Alcotest.(check int) "8x ops" 16 (List.length (Generator.local_commands gen));
  let flat = Spec.make ~local_ops:2 ~local_long_tail:0.0 () in
  let gen = Generator.create ~spec:flat ~rng:(Rng.create ~seed:12) in
  Alcotest.(check int) "legacy length" 2 (List.length (Generator.local_commands gen))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let test_latency_summary () =
  let s = Stats.create () in
  List.iter
    (fun l -> Stats.record_latency s ~started:Time.zero ~finished:(Time.of_int l))
    [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ];
  let sum = Stats.latency_summary s in
  Alcotest.(check bool) "mean" true (abs_float (sum.Stats.mean -. 55.0) < 0.001);
  (* The histogram reports bucket upper bounds: the p50 sample (60) lands
     in the [32, 63] bucket. The extrema stay exact. *)
  Alcotest.(check int) "p50" 63 sum.Stats.p50;
  Alcotest.(check int) "max" 100 sum.Stats.max

let test_abort_rate () =
  let s = Stats.create () in
  for _ = 1 to 10 do
    Stats.note_attempt s
  done;
  for _ = 1 to 8 do
    Stats.note_committed s
  done;
  Alcotest.(check bool) "rate" true (abs_float (Stats.abort_rate s -. 0.2) < 0.001)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let test_driver_completes_quota () =
  let r =
    Driver.run
      { Driver.default_setup with Driver.spec = { Spec.default with Spec.n_global = 30 }; seed = 9 }
  in
  Alcotest.(check int) "quota done" 30 (Stats.committed r.Driver.stats + Stats.aborted_final r.Driver.stats);
  Alcotest.(check int) "nothing stuck" 0 r.Driver.stuck;
  Alcotest.(check bool) "failure-free: all commit" true (Stats.committed r.Driver.stats = 30)

let test_driver_deterministic () =
  let setup = { Driver.default_setup with Driver.failure = Failure.prepared_rate 0.2; seed = 12 } in
  let r1 = Driver.run setup and r2 = Driver.run setup in
  Alcotest.(check int) "same commits" (Stats.committed r1.Driver.stats) (Stats.committed r2.Driver.stats);
  Alcotest.(check int) "same events" r1.Driver.events r2.Driver.events;
  Alcotest.(check int) "same sim time" r1.Driver.sim_ticks r2.Driver.sim_ticks

let test_driver_full_certifier_clean_under_failures () =
  let r =
    Driver.run
      {
        Driver.default_setup with
        Driver.failure = Failure.prepared_rate 0.3;
        seed = 13;
        spec = Spec.make ~n_global:60 ~key_dist:(Spec.Zipf { theta = 0.9 }) ~keys_per_site:10 ();
      }
  in
  let c = Committed.extended r.Driver.history in
  Alcotest.(check bool) "resubmissions happened" true (r.Driver.totals.Hermes_core.Dtm.resubmissions > 0);
  Alcotest.(check (list string)) "no distortions" []
    (List.map (Fmt.str "%a" Anomaly.pp_global) (Anomaly.global_view_distortions c));
  Alcotest.(check bool) "CG acyclic" true (Anomaly.commit_order_cycle c = None)

let test_driver_cgm_protocol () =
  let r =
    Driver.run
      {
        Driver.default_setup with
        Driver.protocol = Driver.Cgm_baseline Cgm.default_config;
        seed = 14;
        spec = { Spec.default with Spec.n_global = 30 };
      }
  in
  Alcotest.(check int) "all commit" 30 (Stats.committed r.Driver.stats);
  Alcotest.(check bool) "cgm stats present" true (r.Driver.cgm <> None)

let test_driver_local_cap () =
  let r =
    Driver.run
      {
        Driver.default_setup with
        Driver.seed = 15;
        spec = { Spec.default with Spec.n_global = 20; local_mpl_per_site = 4; local_txn_cap = 25 };
      }
  in
  let locals = Stats.local_committed r.Driver.stats + Stats.local_aborted r.Driver.stats in
  Alcotest.(check bool) "cap respected" true (locals <= 25)

let test_driver_open_loop_completes () =
  let setup =
    {
      Driver.default_setup with
      Driver.seed = 17;
      spec = Spec.make ~n_global:40 ~arrival:(Spec.Open { rate = 400.0; max_in_flight = 8 }) ();
    }
  in
  let r = Driver.run setup in
  Alcotest.(check int) "quota done" 40
    (Stats.committed r.Driver.stats + Stats.aborted_final r.Driver.stats);
  Alcotest.(check int) "nothing stuck" 0 r.Driver.stuck;
  (* Open-loop runs are as deterministic as closed-loop ones: the arrival
     process has its own split RNG stream. *)
  let r2 = Driver.run setup in
  Alcotest.(check int) "deterministic events" r.Driver.events r2.Driver.events;
  Alcotest.(check int) "deterministic ticks" r.Driver.sim_ticks r2.Driver.sim_ticks;
  Alcotest.(check int) "deterministic commits" (Stats.committed r.Driver.stats)
    (Stats.committed r2.Driver.stats)

let test_gc_acceptance_forces_per_commit () =
  (* The headline number: group commit at 5k transactions under dense
     open-loop load pays fewer than 0.5 synchronous log forces per
     committed global (vs ~7 with batching off: 2 agent forces per
     subtransaction and 3 coordinator forces per transaction). *)
  let certifier = { Config.full with Config.group_commit_window = 25_000; max_batch = 32 } in
  let r =
    Driver.run
      {
        Driver.default_setup with
        Driver.protocol = Driver.Two_pca certifier;
        seed = 33;
        spec =
          Spec.make ~n_sites:2 ~keys_per_site:1_000 ~n_global:5_000
            ~arrival:(Spec.Open { rate = 1_000.0; max_in_flight = 48 })
            ~key_dist:Spec.Uniform ~local_mpl_per_site:0 ();
      }
  in
  let committed = Stats.committed r.Driver.stats in
  let t = r.Driver.totals in
  Alcotest.(check int) "nothing stuck" 0 r.Driver.stuck;
  Alcotest.(check bool) "most of the quota commits" true (committed > 4_000);
  let fpc =
    float_of_int (t.Hermes_core.Dtm.agent_log_forces + t.Hermes_core.Dtm.coord_log_forces)
    /. float_of_int committed
  in
  Alcotest.(check bool)
    (Fmt.str "forces per committed txn %.3f < 0.5" fpc)
    true (fpc < 0.5)

let test_protocol_names () =
  Alcotest.(check string) "2cm" "2CM" (Driver.protocol_name (Driver.Two_pca Config.full));
  Alcotest.(check string) "naive" "naive" (Driver.protocol_name (Driver.Two_pca Config.naive));
  Alcotest.(check string) "ticket" "ticket" (Driver.protocol_name (Driver.Two_pca Config.ticket));
  Alcotest.(check string) "cgm" "CGM-site" (Driver.protocol_name (Driver.Cgm_baseline Cgm.default_config))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "workload"
    [
      ( "zipf",
        [
          Alcotest.test_case "bounds" `Quick test_zipf_bounds;
          Alcotest.test_case "skew" `Quick test_zipf_skew;
          Alcotest.test_case "uniform" `Quick test_zipf_uniform;
          q prop_zipf_in_range;
        ] );
      ( "spec",
        [
          Alcotest.test_case "builder" `Quick test_spec_builder;
          Alcotest.test_case "open loop" `Quick test_spec_open_loop;
          Alcotest.test_case "shards default" `Quick test_spec_shards_default;
        ] );
      ( "generator",
        [
          Alcotest.test_case "distinct sites" `Quick test_generator_distinct_sites;
          Alcotest.test_case "no upgrade patterns" `Quick test_generator_no_upgrades;
          Alcotest.test_case "partitioned locals" `Quick test_generator_partitioned_locals;
          Alcotest.test_case "hotspot keys" `Quick test_generator_hotspot_keys;
          Alcotest.test_case "uniform keys in range" `Quick test_generator_uniform_keys_in_range;
          Alcotest.test_case "long-tail locals" `Quick test_generator_long_tail_locals;
        ] );
      ( "stats",
        [
          Alcotest.test_case "latency summary" `Quick test_latency_summary;
          Alcotest.test_case "abort rate" `Quick test_abort_rate;
        ] );
      ( "driver",
        [
          Alcotest.test_case "completes quota" `Quick test_driver_completes_quota;
          Alcotest.test_case "deterministic" `Quick test_driver_deterministic;
          Alcotest.test_case "clean under failures" `Quick test_driver_full_certifier_clean_under_failures;
          Alcotest.test_case "CGM protocol" `Quick test_driver_cgm_protocol;
          Alcotest.test_case "local cap" `Quick test_driver_local_cap;
          Alcotest.test_case "open loop completes and is deterministic" `Quick
            test_driver_open_loop_completes;
          Alcotest.test_case "group commit: <0.5 forces per commit at 5k" `Slow
            test_gc_acceptance_forces_per_commit;
          Alcotest.test_case "protocol names" `Quick test_protocol_names;
        ] );
    ]
